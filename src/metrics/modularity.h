#ifndef ROADPART_METRICS_MODULARITY_H_
#define ROADPART_METRICS_MODULARITY_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Newman modularity Q of a weighted undirected graph under `assignment`:
///   Q = (1/2m) * sum_ij (A_ij - d_i d_j / 2m) * delta(c_i, c_j).
/// Section 7 notes the alpha-Cut matrix is the negative of the modularity
/// matrix, so minimizing alpha-Cut approximately maximizes Q; tests exercise
/// that identity.
Result<double> Modularity(const CsrGraph& graph,
                          const std::vector<int>& assignment);

}  // namespace roadpart

#endif  // ROADPART_METRICS_MODULARITY_H_
