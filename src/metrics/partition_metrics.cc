#include "metrics/partition_metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "metrics/pairwise.h"

namespace roadpart {

namespace {

constexpr double kEps = 1e-12;

struct Grouping {
  int k = 0;
  std::vector<std::vector<double>> features;     // per partition
  std::vector<double> means;                     // per partition
  std::vector<std::set<int>> neighbours;         // spatially adjacent partitions
};

Result<Grouping> BuildGrouping(const CsrGraph& graph,
                               const std::vector<double>& features,
                               const std::vector<int>& assignment) {
  const int n = graph.num_nodes();
  if (static_cast<int>(features.size()) != n ||
      static_cast<int>(assignment.size()) != n) {
    return Status::InvalidArgument("features/assignment size != node count");
  }
  int k = 0;
  for (int a : assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    k = std::max(k, a + 1);
  }
  if (k == 0) return Status::InvalidArgument("empty assignment");

  Grouping g;
  g.k = k;
  g.features.resize(k);
  g.means.assign(k, 0.0);
  g.neighbours.resize(k);
  for (int v = 0; v < n; ++v) {
    g.features[assignment[v]].push_back(features[v]);
  }
  for (int p = 0; p < k; ++p) {
    double sum = 0.0;
    for (double f : g.features[p]) sum += f;
    if (!g.features[p].empty()) {
      g.means[p] = sum / static_cast<double>(g.features[p].size());
    }
  }
  for (int u = 0; u < n; ++u) {
    for (int v : graph.Neighbors(u)) {
      if (assignment[u] != assignment[v]) {
        g.neighbours[assignment[u]].insert(assignment[v]);
      }
    }
  }
  return g;
}

// Average |f - mean| scatter of a partition (the S(P_i) of the GDBI
// footnote).
double MeanAbsScatter(const std::vector<double>& values, double mean) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += std::fabs(v - mean);
  return acc / static_cast<double>(values.size());
}

}  // namespace

Result<double> InterMetric(const CsrGraph& graph,
                           const std::vector<double>& features,
                           const std::vector<int>& assignment) {
  RP_ASSIGN_OR_RETURN(Grouping g, BuildGrouping(graph, features, assignment));
  double total = 0.0;
  int count = 0;
  for (int p = 0; p < g.k; ++p) {
    for (int q : g.neighbours[p]) {
      if (q <= p) continue;  // each adjacent pair once
      total += AverageAbsCrossDifference(g.features[p], g.features[q]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / count;
}

Result<double> IntraMetric(const CsrGraph& graph,
                           const std::vector<double>& features,
                           const std::vector<int>& assignment) {
  RP_ASSIGN_OR_RETURN(Grouping g, BuildGrouping(graph, features, assignment));
  double total = 0.0;
  int counted = 0;
  for (int p = 0; p < g.k; ++p) {
    if (g.features[p].empty()) continue;
    total += AverageAbsPairwiseDifference(g.features[p]);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

Result<double> GraphDaviesBouldin(const CsrGraph& graph,
                                  const std::vector<double>& features,
                                  const std::vector<int>& assignment) {
  RP_ASSIGN_OR_RETURN(Grouping g, BuildGrouping(graph, features, assignment));
  // Floor the mean separation at a small fraction of the global spread:
  // adjacent partitions with (near-)identical means are legitimately bad,
  // but an unbounded ratio would let one such pair dominate every other
  // signal in the index.
  double global_mean = Mean(features);
  double mad = 0.0;
  for (double f : features) mad += std::fabs(f - global_mean);
  if (!features.empty()) mad /= static_cast<double>(features.size());
  const double sep_floor = std::max(kEps, 1e-3 * mad);
  double total = 0.0;
  int counted = 0;
  for (int p = 0; p < g.k; ++p) {
    if (g.features[p].empty()) continue;
    double worst = 0.0;
    bool has_neighbour = false;
    double sp = MeanAbsScatter(g.features[p], g.means[p]);
    for (int q : g.neighbours[p]) {
      double sq = MeanAbsScatter(g.features[q], g.means[q]);
      double sep = std::fabs(g.means[p] - g.means[q]);
      double ratio = (sp + sq) / std::max(sep, sep_floor);
      worst = std::max(worst, ratio);
      has_neighbour = true;
    }
    if (has_neighbour) {
      total += worst;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / counted;
}

Result<double> AverageNcutSilhouette(const CsrGraph& graph,
                                     const std::vector<double>& features,
                                     const std::vector<int>& assignment) {
  RP_ASSIGN_OR_RETURN(Grouping g, BuildGrouping(graph, features, assignment));
  // Size-weighted mean of the per-partition compactness/separation ratios:
  // without the weighting, splitting off singleton partitions (a_i = 0)
  // would game the measure towards over-fragmented partitionings.
  double total = 0.0;
  double weight = 0.0;
  for (int p = 0; p < g.k; ++p) {
    if (g.features[p].empty()) continue;
    double a = AverageAbsPairwiseDifference(g.features[p]);
    double b = 0.0;
    bool has_neighbour = false;
    for (int q : g.neighbours[p]) {
      double cross = AverageAbsCrossDifference(g.features[p], g.features[q]);
      if (!has_neighbour || cross < b) b = cross;
      has_neighbour = true;
    }
    if (!has_neighbour) continue;  // isolated partition: no separation term
    double size = static_cast<double>(g.features[p].size());
    total += size * (a / std::max(b, kEps));
    weight += size;
  }
  return weight == 0.0 ? 0.0 : total / weight;
}

Result<PartitionEvaluation> EvaluatePartitions(
    const CsrGraph& graph, const std::vector<double>& features,
    const std::vector<int>& assignment) {
  PartitionEvaluation eval;
  RP_ASSIGN_OR_RETURN(eval.inter, InterMetric(graph, features, assignment));
  RP_ASSIGN_OR_RETURN(eval.intra, IntraMetric(graph, features, assignment));
  RP_ASSIGN_OR_RETURN(eval.gdbi,
                      GraphDaviesBouldin(graph, features, assignment));
  RP_ASSIGN_OR_RETURN(eval.ans,
                      AverageNcutSilhouette(graph, features, assignment));
  int k = 0;
  for (int a : assignment) k = std::max(k, a + 1);
  eval.num_partitions = k;
  return eval;
}

}  // namespace roadpart
