#ifndef ROADPART_METRICS_PARTITION_REPORT_H_
#define ROADPART_METRICS_PARTITION_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Per-partition summary row.
struct PartitionSummary {
  int id = 0;
  int size = 0;                ///< member segments
  double mean_density = 0.0;
  double stddev_density = 0.0;
  double min_density = 0.0;
  double max_density = 0.0;
  int num_neighbours = 0;      ///< spatially adjacent partitions
  double boundary_weight = 0.0;  ///< total cross-partition edge weight
};

/// Builds the per-partition summaries for an assignment over a (weighted)
/// road graph with per-node densities.
Result<std::vector<PartitionSummary>> SummarizePartitions(
    const CsrGraph& graph, const std::vector<double>& features,
    const std::vector<int>& assignment);

/// Renders the summaries as an aligned text table (one header + one row per
/// partition), the way the CLI and examples print them.
std::string FormatPartitionTable(const std::vector<PartitionSummary>& rows);

}  // namespace roadpart

#endif  // ROADPART_METRICS_PARTITION_REPORT_H_
