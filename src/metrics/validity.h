#ifndef ROADPART_METRICS_VALIDITY_H_
#define ROADPART_METRICS_VALIDITY_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Checks the problem-definition invariants of a partitioning:
///  - C.1: every node carries a partition id and ids are dense in [0, k);
///  - C.2 (when `require_connected`): each partition induces a connected
///    subgraph.
/// Returns OK or a descriptive error.
Status CheckPartitionValidity(const CsrGraph& graph,
                              const std::vector<int>& assignment,
                              bool require_connected = true);

/// Adjusted Rand Index between two labelings (1 = identical up to renaming,
/// ~0 = random agreement). Used by planted-partition recovery tests.
Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b);

}  // namespace roadpart

#endif  // ROADPART_METRICS_VALIDITY_H_
