#ifndef ROADPART_METRICS_PARTITION_METRICS_H_
#define ROADPART_METRICS_PARTITION_METRICS_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// The four quality measures of Section 6.2 evaluated for one partitioning.
/// - inter: average inter-partition distance over spatially adjacent pairs
///   (higher = better heterogeneity, condition C.3).
/// - intra: average intra-partition pairwise distance (lower = better
///   homogeneity, condition C.4).
/// - gdbi: graph Davies-Bouldin index restricted to spatially adjacent
///   partitions (lower = better overall).
/// - ans: average NcutSilhouette-style compactness/separation ratio,
///   size-weighted over partitions (lower = better overall; see DESIGN.md
///   substitution #4).
struct PartitionEvaluation {
  double inter = 0.0;
  double intra = 0.0;
  double gdbi = 0.0;
  double ans = 0.0;
  int num_partitions = 0;
};

/// Evaluates a partition assignment over the road graph. `assignment[v]` must
/// be a dense id in [0, k). Spatial adjacency of partitions is derived from
/// cross-partition edges of `graph`; `features` are the densities.
Result<PartitionEvaluation> EvaluatePartitions(
    const CsrGraph& graph, const std::vector<double>& features,
    const std::vector<int>& assignment);

/// Individual metrics (same contracts as EvaluatePartitions).
Result<double> InterMetric(const CsrGraph& graph,
                           const std::vector<double>& features,
                           const std::vector<int>& assignment);
Result<double> IntraMetric(const CsrGraph& graph,
                           const std::vector<double>& features,
                           const std::vector<int>& assignment);
Result<double> GraphDaviesBouldin(const CsrGraph& graph,
                                  const std::vector<double>& features,
                                  const std::vector<int>& assignment);
Result<double> AverageNcutSilhouette(const CsrGraph& graph,
                                     const std::vector<double>& features,
                                     const std::vector<int>& assignment);

}  // namespace roadpart

#endif  // ROADPART_METRICS_PARTITION_METRICS_H_
