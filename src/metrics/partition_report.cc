#include "metrics/partition_report.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace roadpart {

Result<std::vector<PartitionSummary>> SummarizePartitions(
    const CsrGraph& graph, const std::vector<double>& features,
    const std::vector<int>& assignment) {
  const int n = graph.num_nodes();
  if (static_cast<int>(features.size()) != n ||
      static_cast<int>(assignment.size()) != n) {
    return Status::InvalidArgument("features/assignment size != node count");
  }
  int k = 0;
  for (int a : assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    k = std::max(k, a + 1);
  }

  std::vector<PartitionSummary> rows(k);
  std::vector<double> sum(k, 0.0);
  std::vector<double> sum_sq(k, 0.0);
  std::vector<std::set<int>> neighbours(k);
  for (int p = 0; p < k; ++p) rows[p].id = p;

  for (int v = 0; v < n; ++v) {
    int p = assignment[v];
    PartitionSummary& row = rows[p];
    if (row.size == 0) {
      row.min_density = features[v];
      row.max_density = features[v];
    }
    row.size++;
    sum[p] += features[v];
    sum_sq[p] += features[v] * features[v];
    row.min_density = std::min(row.min_density, features[v]);
    row.max_density = std::max(row.max_density, features[v]);

    auto nbrs = graph.Neighbors(v);
    auto wts = graph.NeighborWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (assignment[nbrs[i]] != p) {
        neighbours[p].insert(assignment[nbrs[i]]);
        row.boundary_weight += wts[i];
      }
    }
  }
  for (int p = 0; p < k; ++p) {
    PartitionSummary& row = rows[p];
    if (row.size > 0) {
      row.mean_density = sum[p] / row.size;
      row.stddev_density = std::sqrt(
          std::max(0.0, sum_sq[p] / row.size - row.mean_density * row.mean_density));
    }
    row.num_neighbours = static_cast<int>(neighbours[p].size());
  }
  return rows;
}

std::string FormatPartitionTable(const std::vector<PartitionSummary>& rows) {
  std::ostringstream out;
  out << StrPrintf("%4s %8s %10s %10s %10s %10s %6s %10s\n", "id", "size",
                   "mean", "stddev", "min", "max", "nbrs", "boundary");
  for (const PartitionSummary& row : rows) {
    out << StrPrintf("%4d %8d %10.4f %10.4f %10.4f %10.4f %6d %10.3f\n",
                     row.id, row.size, row.mean_density, row.stddev_density,
                     row.min_density, row.max_density, row.num_neighbours,
                     row.boundary_weight);
  }
  return out.str();
}

}  // namespace roadpart
