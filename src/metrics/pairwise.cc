#include "metrics/pairwise.h"

#include <algorithm>

namespace roadpart {

double SumAbsPairwiseDifference(std::vector<double> values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  std::sort(values.begin(), values.end());
  // For ascending values, sum_{i<j} (v_j - v_i) = sum_j (j * v_j - prefix_j).
  double total = 0.0;
  double prefix = 0.0;
  for (size_t j = 0; j < n; ++j) {
    total += static_cast<double>(j) * values[j] - prefix;
    prefix += values[j];
  }
  return total;
}

double AverageAbsPairwiseDifference(std::vector<double> values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return SumAbsPairwiseDifference(std::move(values)) / pairs;
}

double AverageAbsCrossDifference(std::vector<double> a,
                                 std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(b.begin(), b.end());
  std::vector<double> prefix(b.size() + 1, 0.0);
  for (size_t i = 0; i < b.size(); ++i) prefix[i + 1] = prefix[i] + b[i];
  const double total_b = prefix.back();

  double total = 0.0;
  for (double x : a) {
    // Elements of b below x contribute (x - b_j); above contribute (b_j - x).
    size_t lo = static_cast<size_t>(
        std::lower_bound(b.begin(), b.end(), x) - b.begin());
    double below_sum = prefix[lo];
    double above_sum = total_b - below_sum;
    double below_cnt = static_cast<double>(lo);
    double above_cnt = static_cast<double>(b.size() - lo);
    total += x * below_cnt - below_sum + above_sum - x * above_cnt;
  }
  return total / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

}  // namespace roadpart
