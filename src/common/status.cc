#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace roadpart {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace roadpart
