#ifndef ROADPART_COMMON_DURABLE_IO_H_
#define ROADPART_COMMON_DURABLE_IO_H_

/// Crash-safe artifact I/O.
///
/// Every file the library persists (networks, supergraphs, snapshot series,
/// partitions, checkpoints) flows through two primitives:
///
///  - AtomicFileWriter: write `path.tmp.<pid>` -> flush -> fsync -> checked
///    close -> rename(tmp, path). A crash at any point leaves either the old
///    file or no file — never a torn one. Every step returns a Status (a
///    full-disk ENOSPC surfacing only at close/fsync is an error here, not a
///    silent success).
///
///  - A checksummed artifact envelope: WriteArtifact brackets a text payload
///    between a header line and a footer line carrying the format name,
///    format version, payload length and an FNV-1a-64 checksum. Both lines
///    start with '#' so legacy/foreign parsers treat them as comments.
///    ReadArtifact verifies the envelope and returns the payload, or a typed
///    Status::Corruption for torn / truncated / bit-flipped files. Because
///    the envelope is marked at BOTH ends, a single corrupted byte can
///    disguise at most one marker — the other still forces strict
///    verification, so one-byte corruption of a saved artifact is always
///    detected (FNV-1a with an odd multiplier provably changes under any
///    single-byte substitution).
///
/// Transient-fault sites wrap their I/O in RetryTransientIO: bounded
/// attempts with deterministic exponential backoff whose jitter comes from a
/// seeded common/rng stream and whose sleeping is injected — no wall-time
/// nondeterminism enters the library.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace roadpart {

// --- Checksums and bit-exact number round-trips -----------------------------

inline constexpr uint64_t kFnv1a64Basis = 1469598103934665603ULL;

/// FNV-1a 64-bit over raw bytes. Chainable via `basis`.
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t basis = kFnv1a64Basis);
uint64_t Fnv1a64(std::string_view data, uint64_t basis = kFnv1a64Basis);

/// IEEE-754 bit pattern of `value` as 16 lowercase hex digits, and back.
/// Text serialization that round-trips doubles *bit-exactly* (checkpoint
/// payloads must reproduce computed values, not decimal approximations).
std::string DoubleToBitsHex(double value);
Result<double> DoubleFromBitsHex(std::string_view hex);

/// `value` as 16 lowercase hex digits, and back (checksums, fingerprints).
std::string Uint64ToHex(uint64_t value);
Result<uint64_t> Uint64FromHex(std::string_view hex);

// --- Deterministic bounded retry --------------------------------------------

/// Retry policy for transient I/O faults. Backoff for attempt i is
/// base_delay_seconds * multiplier^i, scaled by a jitter factor drawn
/// deterministically from `seed` — two policies with equal seeds produce
/// equal delay sequences.
struct RetryOptions {
  int max_attempts = 1;  ///< total tries; 1 = no retry
  double base_delay_seconds = 0.01;
  double multiplier = 2.0;
  /// Jitter amplitude: each delay is scaled by a factor uniform in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.25;
  uint64_t seed = 0x10aded;  ///< seeds the jitter stream (common/rng)
  /// Injected clock: called with each backoff delay. Defaults (when null) to
  /// a real sleep; tests inject a recorder to keep runs instant and to
  /// assert the deterministic schedule.
  std::function<void(double /*seconds*/)> sleep;
};

/// The deterministic backoff schedule of RetryOptions, one delay per call.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryOptions& options);

  /// Delay to wait after the (attempt_ + 1)-th failure.
  double NextDelaySeconds();

 private:
  double base_;
  double multiplier_;
  double jitter_;
  uint64_t rng_state_;  // reseeds a common/rng draw per delay; copies are cheap
  int attempt_ = 0;
};

/// Runs `op` up to options.max_attempts times. Only kIOError is treated as
/// transient and retried (after a backoff); any other status — including
/// kCorruption, which retrying cannot fix — returns immediately.
Status RetryTransientIO(const RetryOptions& options,
                        const std::function<Status()>& op);

// --- Atomic file writes -----------------------------------------------------

/// Writes a file atomically: all bytes go to `path.tmp.<pid>`, and only a
/// fully flushed, fsynced, close-checked temp file is renamed onto `path`.
/// If the writer is destroyed before Commit(), the temp file is removed and
/// `path` is untouched. Not thread-safe; one writer per file.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates the temp file. Must be called (successfully) before Append.
  Status Open();

  /// Appends bytes to the temp file.
  Status Append(std::string_view data);

  /// Flush + fsync + close (each checked) + atomic rename onto the target.
  /// After an OK Commit the file is durably in place under `path`.
  Status Commit();

  /// Closes and removes the temp file; the target is untouched. Safe to call
  /// after a failed Append/Commit or not at all (the destructor aborts too).
  Status Abort();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  bool committed_ = false;
};

/// One-shot atomic whole-file write with bounded transient retry: each
/// attempt runs the full Open/Append/Commit cycle on a fresh temp file.
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const RetryOptions& retry = {});

// --- Checksummed artifact envelope ------------------------------------------

/// Identity of an artifact as recorded in its envelope.
struct ArtifactInfo {
  std::string format;  ///< e.g. "supergraph"
  int version = 0;     ///< format version from the envelope
  bool enveloped = false;  ///< false for legacy/foreign files (no markers)
};

struct ArtifactReadOptions {
  /// Expected format name; "" accepts any. A well-formed envelope naming a
  /// different format is FailedPrecondition (a usage error, not corruption).
  std::string expected_format;
  /// Require the envelope. When false (the default) a file bearing neither
  /// marker is returned as-is — the legacy / hand-authored / foreign-tool
  /// path. A file bearing *either* marker is always verified strictly.
  bool require_envelope = false;
  /// Bounded retry for transient read failures (open/read errors only;
  /// corruption is never retried).
  RetryOptions retry;
};

/// Atomically writes `payload` wrapped in the checksummed envelope. The
/// payload must be text ending in '\n' (a trailing newline is added if
/// missing, and is part of the checksummed bytes). `retry` bounds transient
/// write faults.
Status WriteArtifact(const std::string& path, std::string_view format,
                     int version, std::string_view payload,
                     const RetryOptions& retry = {});

/// Reads a file written by WriteArtifact and returns its verified payload.
/// Detection logic: if neither envelope marker is present the file is
/// foreign (returned whole, unless options.require_envelope). If either
/// marker is present, the envelope must verify completely — header/footer
/// agreement, payload length, checksum — and any violation is a typed
/// Status::Corruption naming what tore. `info`, when given, receives the
/// artifact identity.
Result<std::string> ReadArtifact(const std::string& path,
                                 const ArtifactReadOptions& options = {},
                                 ArtifactInfo* info = nullptr);

/// Reads an entire file into a string (binary-exact).
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace roadpart

#endif  // ROADPART_COMMON_DURABLE_IO_H_
