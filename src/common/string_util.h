#ifndef ROADPART_COMMON_STRING_UTIL_H_
#define ROADPART_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace roadpart {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace roadpart

#endif  // ROADPART_COMMON_STRING_UTIL_H_
