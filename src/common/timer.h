#ifndef ROADPART_COMMON_TIMER_H_
#define ROADPART_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <vector>

namespace roadpart {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates named phase timings, used for Table-3 style module breakdowns.
class PhaseTimer {
 public:
  /// Ends any running phase and starts a new one under `name`.
  void StartPhase(const std::string& name);

  /// Ends the running phase (no-op if none).
  void Stop();

  /// Total seconds attributed to `name` across all StartPhase calls.
  double PhaseSeconds(const std::string& name) const;

  /// Sum over all phases.
  double TotalSeconds() const;

  /// Phase names in first-start order.
  std::vector<std::string> PhaseNames() const;

 private:
  struct Phase {
    std::string name;
    double seconds = 0.0;
  };

  int FindPhase(const std::string& name) const;

  std::vector<Phase> phases_;
  int running_ = -1;
  Timer timer_;
};

}  // namespace roadpart

#endif  // ROADPART_COMMON_TIMER_H_
