#ifndef ROADPART_COMMON_FLAGS_H_
#define ROADPART_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace roadpart {

/// Minimal command-line parser for the CLI tools: positional arguments plus
/// `--name=value` / `--name value` / boolean `--name` options.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). Unknown flags are kept and reported by
  /// UnknownFlags() so tools can reject typos. Flags listed in `bool_flags`
  /// are value-less: a bare `--flag` never consumes the following token
  /// (`--flag=true` stays accepted).
  static Result<FlagParser> Parse(
      int argc, const char* const* argv,
      const std::vector<std::string>& known_flags,
      const std::vector<std::string>& bool_flags = {});

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String value or fallback.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value or fallback; malformed values return an error.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double value or fallback; malformed values return an error.
  Result<double> GetDouble(const std::string& name, double fallback) const;

  /// Boolean: present without value (or "true"/"1") = true.
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace roadpart

#endif  // ROADPART_COMMON_FLAGS_H_
