#ifndef ROADPART_COMMON_LOGGING_H_
#define ROADPART_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/check.h"  // RP_CHECK historically lived here; keep it visible.

namespace roadpart {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the level.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define RP_LOG(severity)                                                     \
  (::roadpart::LogLevel::k##severity < ::roadpart::GetLogLevel())            \
      ? (void)0                                                              \
      : ::roadpart::internal::LogMessageVoidify() &                          \
            ::roadpart::internal::LogMessage(::roadpart::LogLevel::k##severity, \
                                             __FILE__, __LINE__)             \
                .stream()

}  // namespace roadpart

#endif  // ROADPART_COMMON_LOGGING_H_
