#include "common/flags.h"

#include <algorithm>

#include "common/string_util.h"

namespace roadpart {

Result<FlagParser> FlagParser::Parse(
    int argc, const char* const* argv,
    const std::vector<std::string>& known_flags,
    const std::vector<std::string>& bool_flags) {
  FlagParser parser;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      parser.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // `--flag value` form: consume the next token if it is not a flag and
      // the flag is known to take a value. Declared boolean flags never
      // consume the next token (it would swallow a positional argument).
      bool is_bool = std::find(bool_flags.begin(), bool_flags.end(), name) !=
                     bool_flags.end();
      if (!is_bool && i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(known_flags.begin(), known_flags.end(), name) ==
        known_flags.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    parser.flags_[name] = value;
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& name,
                                   int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return ParseInt(it->second);
}

Result<double> FlagParser::GetDouble(const std::string& name,
                                     double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return ParseDouble(it->second);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

}  // namespace roadpart
