#ifndef ROADPART_COMMON_FAULT_INJECTION_H_
#define ROADPART_COMMON_FAULT_INJECTION_H_

#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace roadpart {

/// Named fault points compiled into the library. Each site sits on a path
/// where real deployments see bad data or numerical trouble; tests arm them
/// to prove the pipeline degrades cleanly instead of crashing or silently
/// emitting garbage (see tests/fault_injection_test.cc).
enum class FaultSite {
  /// LoadDensities: a deterministic subset of loaded values becomes NaN
  /// (sensor dropouts in a live density feed).
  kDensityLoadNaN = 0,
  /// LoadDensities: the trailing quarter of the vector is dropped (stale or
  /// truncated read from a feed that died mid-write).
  kDensityLoadShortRead,
  /// LanczosEigen: the whole call refuses to declare convergence, forcing
  /// the caller onto its fallback ladder. One query per LanczosEigen call,
  /// so Arm(site, 1) sabotages exactly the first solve.
  kLanczosNonConvergence,
  /// KMeansRows: the input rows are replaced by an all-zero matrix (a
  /// degenerate spectral embedding where every node collapses to one point).
  kKMeansDegenerateEmbedding,
  /// KMeans1D (workspace form): the shared Sorted1DWorkspace behind the
  /// miner's kappa sweep reports itself corrupt. Queried from inside the
  /// sweep's ParallelFor, so arming it proves the per-slot Status plumbing
  /// of the parallel sweep surfaces a clean error instead of crashing; arm
  /// with an unlimited budget for determinism across thread counts.
  kKMeans1DWorkspaceCorruption,
  /// AtomicFileWriter::Append: only part of the buffer reaches the file and
  /// the write reports failure (a full disk / interrupted write mid-stream).
  kDurableShortWrite,
  /// AtomicFileWriter::Commit: the final temp -> target rename fails (target
  /// directory vanished, EXDEV, permission flip under the writer).
  kDurableRenameFailure,
  /// AtomicFileWriter::Commit: fsync of the written temp file fails — the
  /// classic silent-ENOSPC-on-close case the durability layer exists for.
  kDurableFsyncFailure,
  /// WriteArtifact: one payload byte is flipped after the checksum is
  /// computed, producing exactly the torn artifact ReadArtifact must catch.
  kDurableChecksumCorruption,
  /// Snapshot::Load: the verified rpsnap payload loses its trailing quarter
  /// before structural validation (a reader racing a non-atomic copy of the
  /// file). Must surface as typed Corruption, never as UB in the views.
  kSnapshotShortRead,
  /// Snapshot::Load: the loaded snapshot's source fingerprint is declared
  /// stale, modelling a serving tier that refreshed its network but not its
  /// snapshot. Queried once per Load, after validation succeeds.
  kSnapshotStaleFingerprint,
  /// SnapshotManager::Reload: the fully-loaded, fully-validated candidate
  /// snapshot is declared corrupt at the last moment before the swap (a
  /// publisher whose artifact tore between validation and adoption). The
  /// manager must keep serving the previous snapshot and record the failed
  /// reload — rollback is free because the swap never happened. Queried
  /// once per Reload, from serial code.
  kSnapshotSwapCorruption,
  /// ServeQueries: the admission controller's query budget collapses to
  /// zero for this call, so every query line in the window is answered
  /// `shed ... queue-full` (a serving tier at saturation). Queried once per
  /// ServeQueries call, from the serial parse/admission phase, so the
  /// degraded output is byte-identical for every thread count.
  kServeShedOverflow,
  /// ServeQueries: the per-batch deadline is declared expired before any
  /// query dispatches (a stalled upstream eating the whole budget). Under
  /// the isolate policy every query line in the window answers
  /// `shed ... deadline`; under strict the call fails DeadlineExceeded.
  /// Queried once per ServeQueries call, from serial code.
  kServeQueryTimeout,
  /// IncrementalRepartitioner::Refresh: the cached warm-start embedding for
  /// every region is declared corrupt before it is handed to the eigensolver
  /// (a torn warm cache surviving a crash). The engine must fall back to the
  /// cold seeded start — identical fallback ladder, valid output. Queried
  /// once per Refresh, from the serial dirty-detection phase.
  kWarmStartCorruption,
  /// IncrementalRepartitioner::Refresh: the dirty-region detector reports
  /// an overflow (density delta accounting no longer trustworthy) and must
  /// degrade by marking *every* region dirty — a safe over-recut, never a
  /// missed one. Queried once per Refresh, from serial code.
  kDirtyDetectOverflow,
  kFaultSiteCount,  ///< sentinel; keep last
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kFaultSiteCount);

const char* FaultSiteName(FaultSite site);

/// Deterministic, seeded fault injector. Sites fire while armed and count
/// every fire, so a test can assert both that a fault was actually exercised
/// and that two runs with the same seed + same arming produce bit-identical
/// behavior. Thread-safe; determinism across thread counts holds as long as
/// armed sites are queried from serial code or armed with an unlimited
/// budget (a finite budget raced by parallel queries would be claimed in
/// nondeterministic order).
class FaultInjector {
 public:
  static constexpr int kUnlimited = std::numeric_limits<int>::max();

  explicit FaultInjector(uint64_t seed);

  /// Arms `site` to fire on its next `count` queries.
  void Arm(FaultSite site, int count = kUnlimited);

  /// Clears any remaining budget on `site`.
  void Disarm(FaultSite site);

  /// True when `site` is armed; decrements the budget and bumps the fire
  /// counter.
  bool ShouldFire(FaultSite site);

  /// Times `site` has fired since construction.
  int fire_count(FaultSite site) const;

  /// `how_many` distinct indices in [0, n), sorted ascending, drawn from the
  /// injector's seeded stream — the deterministic choice of which entries a
  /// corruption site mangles.
  std::vector<int> PickIndices(int n, int how_many);

 private:
  mutable std::mutex mu_;
  uint64_t rng_state_;  // SplitMix64 state; advanced by PickIndices
  std::array<int, kNumFaultSites> armed_{};
  std::array<int, kNumFaultSites> fired_{};
};

/// Process-global injector consulted by the RP_FAULT_FIRES hooks; null (the
/// default) means every site is cold.
FaultInjector* GlobalFaultInjector();
void SetGlobalFaultInjector(FaultInjector* injector);

/// RAII installer for tests: installs `injector` on construction, restores
/// the previous global on destruction.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

namespace internal {
/// Out-of-line slow path behind RP_FAULT_FIRES.
bool FaultPointFires(FaultSite site);
}  // namespace internal

/// Hook macro placed at each fault site. Defining RP_DISABLE_FAULT_INJECTION
/// collapses every hook to the constant `false` at compile time (zero cost,
/// dead-code-eliminated guards); otherwise the cost is one atomic pointer
/// load and a branch, paid only at the handful of cold sites above.
#if defined(RP_DISABLE_FAULT_INJECTION)
#define RP_FAULT_FIRES(site) (false)
#else
#define RP_FAULT_FIRES(site) (::roadpart::internal::FaultPointFires(site))
#endif

}  // namespace roadpart

#endif  // ROADPART_COMMON_FAULT_INJECTION_H_
