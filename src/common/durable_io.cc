#include "common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

// Envelope markers. Both start with '#' so every line-oriented parser in the
// repo (and most foreign ones) reads them as comments; the two spellings are
// prefix-disjoint ("#! rpaf " vs "#! rpaf-end "), so one cannot be mistaken
// for the other.
constexpr char kHeaderMarker[] = "#! rpaf ";
constexpr char kFooterMarker[] = "#! rpaf-end ";
constexpr size_t kHeaderMarkerLen = sizeof(kHeaderMarker) - 1;
constexpr size_t kFooterMarkerLen = sizeof(kFooterMarker) - 1;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return StrPrintf("%s %s: %s", what.c_str(), path.c_str(),
                   std::strerror(errno));
}

void SleepForSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

// --- Checksums and bit-exact number round-trips -----------------------------

uint64_t Fnv1a64(const void* data, size_t size, uint64_t basis) {
  // For a fixed position and prefix state h, h' = (h ^ byte) * prime is
  // injective in `byte` (odd prime => multiplication mod 2^64 is invertible),
  // and every later step is a bijection of the running state — which is why
  // any single-byte substitution provably changes the digest.
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = basis;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t Fnv1a64(std::string_view data, uint64_t basis) {
  return Fnv1a64(data.data(), data.size(), basis);
}

std::string DoubleToBitsHex(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Uint64ToHex(bits);
}

Result<double> DoubleFromBitsHex(std::string_view hex) {
  RP_ASSIGN_OR_RETURN(uint64_t bits, Uint64FromHex(hex));
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string Uint64ToHex(uint64_t value) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(value));
}

Result<uint64_t> Uint64FromHex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) {
    return Status::InvalidArgument(
        StrPrintf("bad hex64 '%.*s'", static_cast<int>(hex.size()),
                  hex.data()));
  }
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      // No uppercase: every producer is Uint64ToHex, which emits lowercase.
      // Accepting 'A'-'F' would let a case-flipped (corrupted) checksum
      // byte parse to the same value and defeat byte-flip detection.
      return Status::InvalidArgument(
          StrPrintf("bad hex64 '%.*s'", static_cast<int>(hex.size()),
                    hex.data()));
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

// --- Deterministic bounded retry --------------------------------------------

RetryBackoff::RetryBackoff(const RetryOptions& options)
    : base_(options.base_delay_seconds),
      multiplier_(options.multiplier),
      jitter_(std::clamp(options.jitter_fraction, 0.0, 1.0)),
      rng_state_(options.seed) {}

double RetryBackoff::NextDelaySeconds() {
  double delay = base_;
  for (int i = 0; i < attempt_; ++i) delay *= multiplier_;
  ++attempt_;
  // One Rng draw per delay: equal seeds give equal schedules regardless of
  // how far apart in time the attempts land.
  Rng rng(rng_state_);
  rng_state_ = rng.Next();
  double factor = 1.0 - jitter_ + 2.0 * jitter_ * rng.NextDouble();
  return delay * factor;
}

Status RetryTransientIO(const RetryOptions& options,
                        const std::function<Status()>& op) {
  const int attempts = std::max(1, options.max_attempts);
  RetryBackoff backoff(options);
  Status status;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    status = op();
    // Only kIOError is transient. Corruption in particular is sticky: the
    // bytes on disk are wrong and will stay wrong.
    if (status.ok() || status.code() != StatusCode::kIOError) return status;
    if (attempt + 1 < attempts) {
      double delay = backoff.NextDelaySeconds();
      if (options.sleep) {
        options.sleep(delay);
      } else {
        SleepForSeconds(delay);
      }
    }
  }
  return status;
}

// --- Atomic file writes -----------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      temp_path_(StrPrintf("%s.tmp.%d", path_.c_str(),
                           static_cast<int>(::getpid()))) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) (void)Abort();
}

Status AtomicFileWriter::Open() {
  if (fd_ >= 0) return Status::FailedPrecondition("writer already open");
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IOError(ErrnoMessage("cannot create temp file", temp_path_));
  }
  return Status::OK();
}

Status AtomicFileWriter::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFileWriter not open: " + path_);
  }
  size_t limit = data.size();
  bool injected_short = false;
  if (RP_FAULT_FIRES(FaultSite::kDurableShortWrite)) {
    limit = data.size() / 2;  // half the buffer lands, then the device fails
    injected_short = true;
  }
  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd_, data.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed for", temp_path_));
    }
    written += static_cast<size_t>(n);
  }
  if (injected_short) {
    return Status::IOError(
        StrPrintf("short write for %s: %zu of %zu bytes (injected fault)",
                  temp_path_.c_str(), written, data.size()));
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFileWriter not open: " + path_);
  }
  // fsync before close: this is where a full disk that buffered writes
  // "accepted" finally reports ENOSPC. Checked, never assumed.
  if (RP_FAULT_FIRES(FaultSite::kDurableFsyncFailure) ||
      ::fsync(fd_) != 0) {
    Status error =
        Status::IOError(ErrnoMessage("fsync failed for", temp_path_));
    (void)Abort();
    return error;
  }
  int close_result = ::close(fd_);
  fd_ = -1;
  if (close_result != 0) {
    Status error =
        Status::IOError(ErrnoMessage("close failed for", temp_path_));
    (void)Abort();
    return error;
  }
  if (RP_FAULT_FIRES(FaultSite::kDurableRenameFailure) ||
      std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    Status error = Status::IOError(
        StrPrintf("rename %s -> %s failed: %s", temp_path_.c_str(),
                  path_.c_str(), std::strerror(errno)));
    (void)Abort();
    return error;
  }
  committed_ = true;
  // Durability of the rename itself needs the directory entry flushed.
  // Best-effort when the directory cannot be opened (e.g. bare filename in
  // a cwd we cannot re-open), but a failing fsync on an opened directory is
  // a real error.
  size_t slash = path_.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    int sync_result = ::fsync(dir_fd);
    int dir_close = ::close(dir_fd);
    if (sync_result != 0 || dir_close != 0) {
      return Status::IOError(ErrnoMessage("directory fsync failed for", dir));
    }
  }
  return Status::OK();
}

Status AtomicFileWriter::Abort() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (!committed_) (void)::unlink(temp_path_.c_str());
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const RetryOptions& retry) {
  return RetryTransientIO(retry, [&]() -> Status {
    AtomicFileWriter writer(path);
    RP_RETURN_IF_ERROR(writer.Open());
    Status status = writer.Append(contents);
    if (status.ok()) status = writer.Commit();
    if (!status.ok()) (void)writer.Abort();
    return status;
  });
}

// --- Checksummed artifact envelope ------------------------------------------

Status WriteArtifact(const std::string& path, std::string_view format,
                     int version, std::string_view payload,
                     const RetryOptions& retry) {
  if (format.empty() || format.find(' ') != std::string_view::npos ||
      format.find('\n') != std::string_view::npos) {
    return Status::InvalidArgument("artifact format must be a single word");
  }
  std::string body(payload);
  if (body.empty() || body.back() != '\n') body.push_back('\n');
  const uint64_t checksum = Fnv1a64(body);
  if (RP_FAULT_FIRES(FaultSite::kDurableChecksumCorruption)) {
    // Flip one payload byte *after* checksumming: the file lands exactly as
    // torn as a device-level bit flip would leave it.
    if (FaultInjector* injector = GlobalFaultInjector()) {
      std::vector<int> picked =
          injector->PickIndices(static_cast<int>(body.size()), 1);
      if (!picked.empty()) body[picked[0]] ^= 0x01;
    }
  }
  std::string file;
  file.reserve(body.size() + 128);
  file += kHeaderMarker;
  file += format;
  file += StrPrintf(" v%d\n", version);
  file += body;
  file += kFooterMarker;
  file += format;
  file += StrPrintf(" v%d len=%zu fnv=%s\n", version, body.size(),
                    Uint64ToHex(checksum).c_str());
  return AtomicWriteFile(path, file, retry);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  const bool read_error = std::ferror(file) != 0;
  (void)std::fclose(file);
  if (read_error) {
    return Status::IOError(ErrnoMessage("read failed for", path));
  }
  return out;
}

namespace {

struct EnvelopeFields {
  std::string format;
  int version = 0;
  uint64_t length = 0;   // footer only
  uint64_t checksum = 0; // footer only
};

Status ParseHeaderLine(std::string_view line, EnvelopeFields* out) {
  auto fields = Split(Trim(line), ' ');
  if (fields.size() != 2 || fields[1].size() < 2 || fields[1][0] != 'v') {
    return Status::Corruption("malformed artifact header line");
  }
  auto version = ParseInt(std::string_view(fields[1]).substr(1));
  if (!version.ok()) {
    return Status::Corruption("malformed artifact header version");
  }
  out->format = fields[0];
  out->version = static_cast<int>(*version);
  return Status::OK();
}

Status ParseFooterLine(std::string_view line, EnvelopeFields* out) {
  auto fields = Split(Trim(line), ' ');
  if (fields.size() != 4 || fields[1].size() < 2 || fields[1][0] != 'v' ||
      !StartsWith(fields[2], "len=") || !StartsWith(fields[3], "fnv=")) {
    return Status::Corruption("malformed artifact footer line");
  }
  auto version = ParseInt(std::string_view(fields[1]).substr(1));
  auto length = ParseInt(std::string_view(fields[2]).substr(4));
  auto checksum = Uint64FromHex(std::string_view(fields[3]).substr(4));
  if (!version.ok() || !length.ok() || *length < 0 || !checksum.ok()) {
    return Status::Corruption("malformed artifact footer fields");
  }
  out->format = fields[0];
  out->version = static_cast<int>(*version);
  out->length = static_cast<uint64_t>(*length);
  out->checksum = *checksum;
  return Status::OK();
}

}  // namespace

Result<std::string> ReadArtifact(const std::string& path,
                                 const ArtifactReadOptions& options,
                                 ArtifactInfo* info) {
  std::string content;
  RP_RETURN_IF_ERROR(RetryTransientIO(options.retry, [&]() -> Status {
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    content = std::move(bytes).value();
    return Status::OK();
  }));

  const bool header_present =
      StartsWith(content, std::string_view(kHeaderMarker, kHeaderMarkerLen));
  size_t footer_start = std::string::npos;
  if (StartsWith(content, std::string_view(kFooterMarker, kFooterMarkerLen))) {
    footer_start = 0;
  } else {
    std::string needle = std::string("\n") + kFooterMarker;
    size_t pos = content.rfind(needle);
    if (pos != std::string::npos) footer_start = pos + 1;
  }
  const bool footer_present = footer_start != std::string::npos;

  if (!header_present && !footer_present) {
    if (options.require_envelope) {
      return Status::Corruption(path +
                                ": artifact envelope missing (file is "
                                "foreign, torn, or fully overwritten)");
    }
    if (info != nullptr) *info = ArtifactInfo{};
    return content;
  }

  // At least one marker survived: the file claims to be an artifact, so the
  // whole envelope must verify. One corrupted byte can hide one marker but
  // never both.
  if (!header_present) {
    return Status::Corruption(
        path + ": artifact header missing or damaged (footer intact)");
  }
  if (!footer_present) {
    return Status::Corruption(
        path + ": artifact footer missing — file truncated or torn mid-write");
  }
  size_t header_end = content.find('\n');
  if (header_end == std::string::npos || header_end >= footer_start) {
    return Status::Corruption(path + ": artifact header line unterminated");
  }
  size_t footer_line_end = content.find('\n', footer_start);
  if (footer_line_end != std::string::npos &&
      footer_line_end + 1 != content.size()) {
    return Status::Corruption(path + ": trailing bytes after artifact footer");
  }

  EnvelopeFields header;
  EnvelopeFields footer;
  Status parsed = ParseHeaderLine(
      std::string_view(content).substr(kHeaderMarkerLen,
                                       header_end - kHeaderMarkerLen),
      &header);
  if (!parsed.ok()) return Status::Corruption(path + ": " + parsed.message());
  size_t footer_text_begin = footer_start + kFooterMarkerLen;
  size_t footer_text_end =
      footer_line_end == std::string::npos ? content.size() : footer_line_end;
  parsed = ParseFooterLine(
      std::string_view(content).substr(footer_text_begin,
                                       footer_text_end - footer_text_begin),
      &footer);
  if (!parsed.ok()) return Status::Corruption(path + ": " + parsed.message());

  if (header.format != footer.format || header.version != footer.version) {
    return Status::Corruption(
        StrPrintf("%s: artifact header (%s v%d) and footer (%s v%d) disagree",
                  path.c_str(), header.format.c_str(), header.version,
                  footer.format.c_str(), footer.version));
  }
  if (!options.expected_format.empty() &&
      header.format != options.expected_format) {
    return Status::FailedPrecondition(
        StrPrintf("%s: artifact is '%s', expected '%s'", path.c_str(),
                  header.format.c_str(), options.expected_format.c_str()));
  }
  if (footer_start < header_end + 1) {
    return Status::Corruption(path + ": artifact envelope overlaps itself");
  }
  std::string payload =
      content.substr(header_end + 1, footer_start - header_end - 1);
  if (payload.size() != footer.length) {
    return Status::Corruption(StrPrintf(
        "%s: payload length mismatch (footer says %llu bytes, file has %zu) "
        "— truncated or torn",
        path.c_str(), static_cast<unsigned long long>(footer.length),
        payload.size()));
  }
  uint64_t actual = Fnv1a64(payload);
  if (actual != footer.checksum) {
    return Status::Corruption(StrPrintf(
        "%s: checksum mismatch (footer fnv=%s, payload fnv=%s) — artifact "
        "bytes were altered after write",
        path.c_str(), Uint64ToHex(footer.checksum).c_str(),
        Uint64ToHex(actual).c_str()));
  }
  if (info != nullptr) {
    info->format = header.format;
    info->version = header.version;
    info->enveloped = true;
  }
  return payload;
}

}  // namespace roadpart
