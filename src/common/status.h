#ifndef ROADPART_COMMON_STATUS_H_
#define ROADPART_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace roadpart {

/// Error taxonomy for the library. Kept deliberately small; each code maps to a
/// distinct caller-visible failure mode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kNotConverged,
  kDeadlineExceeded,
  /// A persisted artifact failed its integrity checks (torn write, truncated
  /// file, checksum mismatch). Distinct from kIOError — the bytes were read
  /// fine, they are just not the bytes that were written.
  kCorruption,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantic status object used instead of exceptions throughout the
/// library (RocksDB/Arrow idiom). An OK status carries no message and no
/// allocation. [[nodiscard]] on the class makes silently dropping any
/// Status-returning call a compile error (cast to void to discard on
/// purpose, or wrap in RP_CHECK_OK from common/check.h).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Accessing the value of
/// an errored result aborts (programming error), mirroring absl::StatusOr.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::InvalidArgument(...);`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    // An OK status without a value is a contract violation.
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<Status, T> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(payload_));
}

/// Propagates a non-OK status to the caller.
#define RP_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::roadpart::Status _rp_status = (expr);       \
    if (!_rp_status.ok()) return _rp_status;      \
  } while (0)

/// Evaluates a Result<T> expression and either assigns its value to `lhs` or
/// returns the error.
#define RP_ASSIGN_OR_RETURN(lhs, expr)            \
  RP_ASSIGN_OR_RETURN_IMPL_(                      \
      RP_STATUS_CONCAT_(_rp_result, __LINE__), lhs, expr)

#define RP_STATUS_CONCAT_INNER_(a, b) a##b
#define RP_STATUS_CONCAT_(a, b) RP_STATUS_CONCAT_INNER_(a, b)
#define RP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace roadpart

#endif  // ROADPART_COMMON_STATUS_H_
