#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace roadpart {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RP_CHECK(bound > 0);
  // Rejection sampling over the top multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  RP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double lambda) {
  RP_CHECK(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RP_CHECK(w >= 0.0);
    total += w;
  }
  RP_CHECK(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace roadpart
