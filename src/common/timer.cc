#include "common/timer.h"

namespace roadpart {

int PhaseTimer::FindPhase(const std::string& name) const {
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void PhaseTimer::StartPhase(const std::string& name) {
  Stop();
  int idx = FindPhase(name);
  if (idx < 0) {
    phases_.push_back({name, 0.0});
    idx = static_cast<int>(phases_.size()) - 1;
  }
  running_ = idx;
  timer_.Restart();
}

void PhaseTimer::Stop() {
  if (running_ >= 0) {
    phases_[running_].seconds += timer_.Seconds();
    running_ = -1;
  }
}

double PhaseTimer::PhaseSeconds(const std::string& name) const {
  int idx = FindPhase(name);
  return idx < 0 ? 0.0 : phases_[idx].seconds;
}

double PhaseTimer::TotalSeconds() const {
  double total = 0.0;
  for (const auto& p : phases_) total += p.seconds;
  return total;
}

std::vector<std::string> PhaseTimer::PhaseNames() const {
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& p : phases_) names.push_back(p.name);
  return names;
}

}  // namespace roadpart
