#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace roadpart {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
          s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace roadpart
