#include "common/parallel.h"

#include <cstdlib>

namespace roadpart {

namespace {

// Process-wide pin (SetDefaultParallelism). 0 = "no override"; consult
// RP_THREADS / hardware.
std::atomic<int> g_default_parallelism{0};

// Per-thread override (ScopedParallelism, and the nested-fan-out cap the
// threaded loops install on their workers). Takes precedence over the
// process-wide pin, and never races: each thread reads and writes only its
// own slot. Fresh worker threads start at 0 (no override).
thread_local int tl_parallelism_override = 0;

int EnvOrHardwareParallelism() {
  static const int value = [] {
    const char* env = std::getenv("RP_THREADS");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return value;
}

}  // namespace

int DefaultParallelism() {
  if (tl_parallelism_override > 0) return tl_parallelism_override;
  int pinned = g_default_parallelism.load(std::memory_order_relaxed);
  if (pinned > 0) return pinned;
  return EnvOrHardwareParallelism();
}

void SetDefaultParallelism(int n) {
  g_default_parallelism.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ScopedParallelism::ScopedParallelism(int n)
    : active_(n >= 1), saved_(tl_parallelism_override) {
  if (active_) tl_parallelism_override = n;
}

ScopedParallelism::~ScopedParallelism() {
  if (active_) tl_parallelism_override = saved_;
}

void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads) {
  if (count <= 0) return;
  if (num_threads <= 0) num_threads = DefaultParallelism();
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  auto worker = [&]() {
    // Nested-oversubscription cap: fn already runs on `num_threads` workers,
    // so parallel helpers it calls with num_threads = 0 run inline here.
    ScopedParallelism nested_cap(1);
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads) - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();  // this thread participates
  for (std::thread& t : threads) t.join();
}

void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads, int grain) {
  if (grain < 1) grain = 1;
  ParallelForBlocked(
      count, grain,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) fn(static_cast<int>(i));
      },
      num_threads);
}

void ParallelForTasks(int count, const std::function<void(int)>& fn,
                      int num_threads) {
  ParallelFor(count, fn, num_threads, /*grain=*/1);
}

void ParallelForBlocked(int64_t count, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn,
                        int num_threads) {
  if (count <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_blocks = (count + grain - 1) / grain;
  if (num_threads <= 0) num_threads = DefaultParallelism();
  num_threads = static_cast<int>(
      std::min<int64_t>(num_threads, num_blocks));
  if (num_threads <= 1 || num_blocks == 1) {
    for (int64_t b = 0; b < num_blocks; ++b) {
      int64_t begin = b * grain;
      fn(begin, std::min(begin + grain, count));
    }
    return;
  }

  std::atomic<int64_t> next{0};
  auto worker = [&]() {
    // Same nested-oversubscription cap as the index-based ParallelFor.
    ScopedParallelism nested_cap(1);
    for (;;) {
      int64_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks) return;
      int64_t begin = b * grain;
      fn(begin, std::min(begin + grain, count));
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads) - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();  // this thread participates
  for (std::thread& t : threads) t.join();
}

double ParallelBlockedSum(int64_t count, int64_t grain,
                          const std::function<double(int64_t, int64_t)>& block,
                          int num_threads) {
  return ParallelBlockedReduce<double>(
      count, grain, 0.0, block,
      [](double a, double b) { return a + b; }, num_threads);
}

}  // namespace roadpart
