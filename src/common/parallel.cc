#include "common/parallel.h"

namespace roadpart {

int DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads) {
  if (count <= 0) return;
  if (num_threads <= 0) num_threads = DefaultParallelism();
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  auto worker = [&]() {
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads) - 1);
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();  // this thread participates
  for (std::thread& t : threads) t.join();
}

}  // namespace roadpart
