#include "common/fault_injection.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace roadpart {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// SplitMix64 step: the injector needs only a tiny stand-alone stream, and
// keeping it self-contained avoids dragging Rng's Box-Muller state into a
// mutex-guarded context.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDensityLoadNaN:
      return "density-load-nan";
    case FaultSite::kDensityLoadShortRead:
      return "density-load-short-read";
    case FaultSite::kLanczosNonConvergence:
      return "lanczos-nonconvergence";
    case FaultSite::kKMeansDegenerateEmbedding:
      return "kmeans-degenerate-embedding";
    case FaultSite::kKMeans1DWorkspaceCorruption:
      return "kmeans1d-workspace-corruption";
    case FaultSite::kDurableShortWrite:
      return "durable-short-write";
    case FaultSite::kDurableRenameFailure:
      return "durable-rename-failure";
    case FaultSite::kDurableFsyncFailure:
      return "durable-fsync-failure";
    case FaultSite::kDurableChecksumCorruption:
      return "durable-checksum-corruption";
    case FaultSite::kSnapshotShortRead:
      return "snapshot-short-read";
    case FaultSite::kSnapshotStaleFingerprint:
      return "snapshot-stale-fingerprint";
    case FaultSite::kSnapshotSwapCorruption:
      return "snapshot-swap-corruption";
    case FaultSite::kServeShedOverflow:
      return "serve-shed-overflow";
    case FaultSite::kServeQueryTimeout:
      return "serve-query-timeout";
    case FaultSite::kWarmStartCorruption:
      return "warm-start-corruption";
    case FaultSite::kDirtyDetectOverflow:
      return "dirty-detect-overflow";
    case FaultSite::kFaultSiteCount:
      break;
  }
  return "?";
}

FaultInjector::FaultInjector(uint64_t seed) : rng_state_(seed) {}

void FaultInjector::Arm(FaultSite site, int count) {
  RP_CHECK_GE(count, 0);
  std::lock_guard<std::mutex> lock(mu_);
  armed_[static_cast<int>(site)] = count;
}

void FaultInjector::Disarm(FaultSite site) { Arm(site, 0); }

bool FaultInjector::ShouldFire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  int& budget = armed_[static_cast<int>(site)];
  if (budget <= 0) return false;
  if (budget != kUnlimited) --budget;
  ++fired_[static_cast<int>(site)];
  return true;
}

int FaultInjector::fire_count(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_[static_cast<int>(site)];
}

std::vector<int> FaultInjector::PickIndices(int n, int how_many) {
  RP_CHECK_GE(n, 0);
  std::lock_guard<std::mutex> lock(mu_);
  how_many = std::min(how_many, n);
  // Partial Fisher-Yates over an index array: exact sample without rejection,
  // deterministic from the injector stream.
  std::vector<int> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  for (int i = 0; i < how_many; ++i) {
    int j = i + static_cast<int>(SplitMix64(rng_state_) %
                                 static_cast<uint64_t>(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(how_many);
  std::sort(ids.begin(), ids.end());
  return ids;
}

FaultInjector* GlobalFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

void SetGlobalFaultInjector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : previous_(GlobalFaultInjector()) {
  SetGlobalFaultInjector(injector);
}

ScopedFaultInjector::~ScopedFaultInjector() {
  SetGlobalFaultInjector(previous_);
}

namespace internal {

bool FaultPointFires(FaultSite site) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  return injector->ShouldFire(site);
}

}  // namespace internal
}  // namespace roadpart
