#ifndef ROADPART_COMMON_RNG_H_
#define ROADPART_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace roadpart {

/// Deterministic, seedable PRNG (xoshiro256++). All randomized algorithms in
/// the library take an explicit Rng so experiments are reproducible run to
/// run; nothing reads global entropy.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (uses an internal cached spare).
  double NextGaussian();

  /// Gaussian with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from non-negative weights (sum must be > 0).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator; useful for per-task streams.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace roadpart

#endif  // ROADPART_COMMON_RNG_H_
