#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace roadpart {
namespace internal {

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "RP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& detail) {
  std::fprintf(stderr, "RP_CHECK failed: %s %s at %s:%d\n", expr,
               detail.c_str(), file, line);
  std::abort();
}

}  // namespace internal
}  // namespace roadpart
