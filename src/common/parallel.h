#ifndef ROADPART_COMMON_PARALLEL_H_
#define ROADPART_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace roadpart {

/// Number of worker threads ParallelFor uses by default (hardware
/// concurrency, at least 1).
int DefaultParallelism();

/// Runs fn(i) for i in [0, count) across up to `num_threads` threads with
/// dynamic (work-stealing-ish) index assignment. Blocks until every index is
/// done. `fn` must be safe to call concurrently for distinct indices;
/// exceptions must not escape fn (the library is exception-free). With
/// count <= 1 or num_threads <= 1 the loop runs inline.
void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads = 0);

}  // namespace roadpart

#endif  // ROADPART_COMMON_PARALLEL_H_
