#ifndef ROADPART_COMMON_PARALLEL_H_
#define ROADPART_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace roadpart {

/// Number of worker threads ParallelFor uses by default: the calling thread's
/// ScopedParallelism override if any, else the value set with
/// SetDefaultParallelism if any, else the RP_THREADS environment variable if
/// positive, else hardware concurrency (at least 1).
int DefaultParallelism();

/// Overrides the process-wide default used when a parallel helper is called
/// with num_threads = 0. Pass n >= 1 to pin, n <= 0 to restore the
/// environment/hardware default. Thread counts never affect results — every
/// helper in this header is deterministic by construction — so this is a pure
/// performance knob.
void SetDefaultParallelism(int n);

/// RAII thread-count override: sets the default parallelism on construction
/// (when n >= 1; n <= 0 is a no-op) and restores the previous setting on
/// destruction. Used to plumb PartitionerOptions::num_threads and the CLI
/// --threads flag down to the kernels without threading a parameter through
/// every call site.
///
/// The override is *per thread* (thread_local), not process-wide: a scope
/// established on a ParallelFor worker thread — e.g. an inner Partitioner
/// pinned to 1 thread inside the distributed-repartition region fan-out —
/// affects only that worker, never concurrent siblings or the caller.
/// Process-wide pinning stays the job of SetDefaultParallelism.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int n);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  bool active_;
  int saved_;
};

/// Runs fn(i) for i in [0, count) across up to `num_threads` threads with
/// dynamic (work-stealing-ish) index assignment. Blocks until every index is
/// done. `fn` must be safe to call concurrently for distinct indices;
/// exceptions must not escape fn (the library is exception-free). With
/// count <= 1 or num_threads <= 1 the loop runs inline. Never spawns more
/// threads than there are indices.
///
/// Oversubscription policy: when the loop actually fans out (more than one
/// worker), every worker — including the calling thread — runs `fn` under a
/// thread-local parallelism cap of 1, so any parallel helper called from
/// inside `fn` with num_threads = 0 runs inline instead of multiplying
/// thread counts (outer T × inner T). Nested helpers that pass an explicit
/// num_threads >= 1 are unaffected; inline (single-worker) outer loops leave
/// the default untouched, so the inner level is still free to parallelize.
void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads = 0);

/// Grain-size overload: indices are handed out in contiguous chunks of up to
/// `grain` so per-index dispatch overhead amortizes, and no thread is spawned
/// unless there is more than one chunk of work (tiny loops stay inline no
/// matter what DefaultParallelism() says).
void ParallelFor(int count, const std::function<void(int)>& fn,
                 int num_threads, int grain);

/// Coarse-task loop: each index is one heavy unit of work (a whole clustering
/// run, a whole solve), so the grain is pinned to 1 — the block decomposition
/// is one index per block regardless of thread count, single-index loops run
/// inline, and `fn` keeps the same determinism obligations as ParallelFor
/// (disjoint writes only; results may not depend on execution order). The
/// shared entry point for task-level parallelism such as the supergraph
/// miner's per-kappa sweep, as opposed to the data-level grain-tuned kernels.
void ParallelForTasks(int count, const std::function<void(int)>& fn,
                      int num_threads = 0);

/// Runs fn(begin, end) over the fixed block decomposition of [0, count) into
/// blocks of `grain` (the last block may be shorter). The decomposition
/// depends only on (count, grain) — never on the thread count — which is what
/// makes every consumer of this helper deterministic: a block's work is
/// always the same, only *which thread* runs it varies. Blocks must write
/// disjoint state. Runs inline (ascending block order) when only one block or
/// one thread is available.
void ParallelForBlocked(int64_t count, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn,
                        int num_threads = 0);

/// Deterministic parallel reduction: evaluates block(begin, end) for each
/// fixed `grain`-sized block of [0, count), stores the per-block partials,
/// and combines them *serially in ascending block order*. Because the block
/// boundaries and the reduction order are functions of (count, grain) alone,
/// the floating-point result is bit-identical for every thread count,
/// including 1. `block` must be pure with respect to shared state.
double ParallelBlockedSum(int64_t count, int64_t grain,
                          const std::function<double(int64_t, int64_t)>& block,
                          int num_threads = 0);

/// Generic form of ParallelBlockedSum for non-double accumulators: partials
/// of type T are produced per block and folded left-to-right with `combine`
/// starting from `init`. Same determinism guarantee.
template <typename T, typename BlockFn, typename CombineFn>
T ParallelBlockedReduce(int64_t count, int64_t grain, T init,
                        const BlockFn& block, const CombineFn& combine,
                        int num_threads = 0) {
  if (count <= 0) return init;
  if (grain < 1) grain = 1;
  const int64_t num_blocks = (count + grain - 1) / grain;
  if (num_blocks == 1) return combine(std::move(init), block(0, count));
  std::vector<T> partials(static_cast<size_t>(num_blocks));
  ParallelForBlocked(
      count, grain,
      [&](int64_t begin, int64_t end) {
        partials[static_cast<size_t>(begin / grain)] = block(begin, end);
      },
      num_threads);
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace roadpart

#endif  // ROADPART_COMMON_PARALLEL_H_
