#ifndef ROADPART_COMMON_CHECK_H_
#define ROADPART_COMMON_CHECK_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace roadpart {
namespace internal {

/// Prints the failure line ("RP_CHECK failed: <expr> ...") and aborts. The
/// optional `detail` carries stringified operand values for the binary forms
/// or the Status text for RP_CHECK_OK.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& detail);

/// Stringifies both operands of a failing binary comparison; kept out of line
/// so the fast path of the macros stays a single compare + branch.
template <typename A, typename B>
[[noreturn]] void CheckBinaryFailed(const char* expr, const char* file,
                                    int line, const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs " << b << ")";
  CheckFailed(expr, file, line, os.str());
}

/// Adapters so RP_CHECK_OK accepts both Status and Result<T>.
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace internal

/// --- Contract macro tiers -------------------------------------------------
///
/// RP_CHECK*   : active in every build type. Use for cheap invariants whose
///               violation means memory is already (or is about to be)
///               corrupted: index bounds, size agreements, non-null results.
/// RP_DCHECK*  : compiled out when NDEBUG is defined. Use for the expensive
///               structural validators (CsrGraph::Validate, SparseMatrix
///               invariants, partition-label scans) that would change the
///               asymptotic cost of a hot path in production builds.
///
/// All failures abort with expression, location, and (for the binary and
/// _OK forms) the offending values, so a violated invariant produces a crash
/// at the contract boundary instead of a plausible-but-wrong partition.

#define RP_CHECK(cond)                                                   \
  (cond) ? (void)0                                                       \
         : ::roadpart::internal::CheckFailed(#cond, __FILE__, __LINE__)

#define RP_CHECK_BINARY_IMPL_(a, b, op)                                   \
  ((a)op(b)) ? (void)0                                                    \
             : ::roadpart::internal::CheckBinaryFailed(#a " " #op " " #b, \
                                                       __FILE__, __LINE__, \
                                                       (a), (b))

#define RP_CHECK_EQ(a, b) RP_CHECK_BINARY_IMPL_(a, b, ==)
#define RP_CHECK_NE(a, b) RP_CHECK_BINARY_IMPL_(a, b, !=)
#define RP_CHECK_LT(a, b) RP_CHECK_BINARY_IMPL_(a, b, <)
#define RP_CHECK_LE(a, b) RP_CHECK_BINARY_IMPL_(a, b, <=)
#define RP_CHECK_GT(a, b) RP_CHECK_BINARY_IMPL_(a, b, >)
#define RP_CHECK_GE(a, b) RP_CHECK_BINARY_IMPL_(a, b, >=)

/// Fatal unless `expr` (a Status or Result<T>) is OK; prints the status text.
#define RP_CHECK_OK(expr)                                                    \
  do {                                                                       \
    const ::roadpart::Status _rp_check_ok =                                  \
        ::roadpart::internal::ToStatus((expr));                              \
    if (!_rp_check_ok.ok()) {                                                \
      ::roadpart::internal::CheckFailed(#expr " is OK", __FILE__, __LINE__,  \
                                        _rp_check_ok.ToString());            \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define RP_DCHECK_ENABLED 0
#else
#define RP_DCHECK_ENABLED 1
#endif

#if RP_DCHECK_ENABLED
#define RP_DCHECK(cond) RP_CHECK(cond)
#define RP_DCHECK_EQ(a, b) RP_CHECK_EQ(a, b)
#define RP_DCHECK_NE(a, b) RP_CHECK_NE(a, b)
#define RP_DCHECK_LT(a, b) RP_CHECK_LT(a, b)
#define RP_DCHECK_LE(a, b) RP_CHECK_LE(a, b)
#define RP_DCHECK_GT(a, b) RP_CHECK_GT(a, b)
#define RP_DCHECK_GE(a, b) RP_CHECK_GE(a, b)
#define RP_DCHECK_OK(expr) RP_CHECK_OK(expr)
#else
#define RP_DCHECK(cond) (void)0
#define RP_DCHECK_EQ(a, b) (void)0
#define RP_DCHECK_NE(a, b) (void)0
#define RP_DCHECK_LT(a, b) (void)0
#define RP_DCHECK_LE(a, b) (void)0
#define RP_DCHECK_GT(a, b) (void)0
#define RP_DCHECK_GE(a, b) (void)0
#define RP_DCHECK_OK(expr) (void)0
#endif

}  // namespace roadpart

#endif  // ROADPART_COMMON_CHECK_H_
