#ifndef ROADPART_ROADPART_H_
#define ROADPART_ROADPART_H_

/// Umbrella header for the roadpart library: traffic-congestion-based
/// spatial partitioning of large urban road networks (reproduction of
/// Anwar, Liu, Leckie & Vu, EDBT 2014).
///
/// Typical use:
///
///   #include "roadpart/roadpart.h"
///
///   roadpart::GridOptions grid;
///   auto network = roadpart::GenerateGridNetwork(grid).value();
///   roadpart::CongestionField field(network, {});
///   network.SetDensities(field.Densities());
///
///   roadpart::PartitionerOptions options;
///   options.scheme = roadpart::Scheme::kASG;
///   options.k = 6;
///   roadpart::Partitioner partitioner(options);
///   auto outcome = partitioner.PartitionNetwork(network).value();

#include "cluster/kmeans.h"
#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "common/durable_io.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/alpha_cut.h"
#include "core/checkpoint.h"
#include "core/distributed_repartition.h"
#include "core/ji_geroliminis.h"
#include "core/normalized_cut.h"
#include "core/optimal_k.h"
#include "core/partition_tracker.h"
#include "core/refinement.h"
#include "core/partitioner.h"
#include "core/stability.h"
#include "core/supergraph.h"
#include "core/supergraph_io.h"
#include "core/supergraph_miner.h"
#include "graph/connected_components.h"
#include "graph/csr_graph.h"
#include "graph/graph_algos.h"
#include "metrics/modularity.h"
#include "metrics/partition_metrics.h"
#include "metrics/partition_report.h"
#include "metrics/validity.h"
#include "netgen/city_generator.h"
#include "netgen/grid_generator.h"
#include "netgen/radial_generator.h"
#include "network/density_sanitizer.h"
#include "network/edge_list_io.h"
#include "network/geojson_export.h"
#include "network/network_io.h"
#include "network/road_graph.h"
#include "network/road_network.h"
#include "serve/runtime.h"
#include "serve/serve_loop.h"
#include "serve/snapshot.h"
#include "serve/spatial_index.h"
#include "temporal/evolution_analyzer.h"
#include "temporal/interval_driver.h"
#include "temporal/series_io.h"
#include "temporal/snapshot_series.h"
#include "traffic/congestion_field.h"
#include "traffic/density_mapper.h"
#include "traffic/microsim.h"
#include "traffic/router.h"
#include "traffic/trip_generator.h"

#endif  // ROADPART_ROADPART_H_
