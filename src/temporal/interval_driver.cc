#include "temporal/interval_driver.h"

#include <utility>

#include "common/timer.h"
#include "core/partition_tracker.h"
#include "metrics/partition_metrics.h"

namespace roadpart {

Result<IntervalDriveResult> DriveIntervals(
    const RoadGraph& road_graph, const SnapshotSeries& series,
    const IntervalDriverOptions& options) {
  if (series.num_segments() != road_graph.num_nodes()) {
    return Status::InvalidArgument(
        "series segment count does not match the road graph");
  }
  if (series.num_snapshots() == 0) {
    return Status::InvalidArgument("empty snapshot series");
  }

  IntervalDriveResult result;

  // Snapshot 0: one full top-level partition fixes the regions the
  // incremental engine is bound to for the rest of the series.
  RoadGraph graph = road_graph;  // mutable copy for per-snapshot features
  RP_RETURN_IF_ERROR(graph.SetFeatures(series.densities(0)));
  Timer timer;
  RP_ASSIGN_OR_RETURN(PartitionOutcome initial,
                      Partitioner(options.initial).PartitionRoadGraph(graph));
  result.initial_seconds = timer.Seconds();
  result.regions = std::move(initial.assignment);
  result.k_top = initial.k_final;

  RP_ASSIGN_OR_RETURN(IncrementalRepartitioner engine,
                      IncrementalRepartitioner::Create(graph, result.regions,
                                                       options.refresh));

  PartitionTracker tracker;
  result.steps.reserve(series.num_snapshots());
  for (int t = 0; t < series.num_snapshots(); ++t) {
    const std::vector<double>& densities = series.densities(t);
    RP_ASSIGN_OR_RETURN(DistributedRepartitionResult refresh,
                        engine.Refresh(densities));
    IntervalStep step;
    step.timestamp_seconds = series.timestamp(t);
    step.k_final = refresh.k_final;
    step.seconds = refresh.seconds;
    step.stats = std::move(refresh.stats);
    RP_ASSIGN_OR_RETURN(step.assignment, tracker.Align(refresh.assignment));
    step.churn = tracker.last_churn();
    RP_ASSIGN_OR_RETURN(step.ans,
                        AverageNcutSilhouette(graph.adjacency(), densities,
                                              refresh.assignment));
    result.steps.push_back(std::move(step));
  }
  return result;
}

}  // namespace roadpart
