#ifndef ROADPART_TEMPORAL_EVOLUTION_ANALYZER_H_
#define ROADPART_TEMPORAL_EVOLUTION_ANALYZER_H_

#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "network/road_graph.h"
#include "temporal/snapshot_series.h"

namespace roadpart {

/// Per-snapshot record of the repeated-partitioning workflow.
struct EvolutionStep {
  double timestamp_seconds = 0.0;
  std::vector<int> assignment;  ///< tracked (stable) region ids
  int k_final = 0;
  int num_supernodes = 0;
  double mean_density = 0.0;
  double ans = 0.0;    ///< partition quality at this snapshot
  double churn = 0.0;  ///< fraction of segments changing region vs previous
  double seconds = 0.0;  ///< wall time of this re-partitioning
};

/// Aggregate outcome of analyzing a whole series.
struct EvolutionResult {
  std::vector<EvolutionStep> steps;
  /// Snapshot indices where churn spikes above `regime_threshold` — regime
  /// changes such as peak onset/dissolution.
  std::vector<int> regime_changes;
  double mean_churn = 0.0;
};

/// Options for the evolution analysis.
struct EvolutionOptions {
  PartitionerOptions partitioner;  ///< scheme/k used at every snapshot
  /// Churn above this fraction (and above twice the running mean) marks a
  /// regime change.
  double regime_threshold = 0.25;
};

/// Runs the paper's repeated-interval workflow over a snapshot series:
/// re-partition at every snapshot, align region ids over time, measure
/// quality and churn, and flag regime changes. This is the analysis loop the
/// paper's introduction motivates ("studying and analyzing the congestion
/// and its evolving nature with respect to time").
Result<EvolutionResult> AnalyzeEvolution(const RoadGraph& road_graph,
                                         const SnapshotSeries& series,
                                         const EvolutionOptions& options);

}  // namespace roadpart

#endif  // ROADPART_TEMPORAL_EVOLUTION_ANALYZER_H_
