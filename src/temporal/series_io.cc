#include "temporal/series_io.h"

#include <fstream>

#include "common/string_util.h"

namespace roadpart {

Status SaveSnapshotSeries(const SnapshotSeries& series,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# segments: " << series.num_segments() << "\n";
  for (int t = 0; t < series.num_snapshots(); ++t) {
    out << StrPrintf("%.3f", series.timestamp(t));
    for (double d : series.densities(t)) {
      out << StrPrintf(",%.9f", d);
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<SnapshotSeries> LoadSnapshotSeries(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  int num_segments = -1;
  std::vector<std::pair<double, std::vector<double>>> rows;
  while (std::getline(in, line)) {
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    auto fields = Split(t, ',');
    if (fields.size() < 2) {
      return Status::IOError("snapshot row needs a timestamp and densities");
    }
    RP_ASSIGN_OR_RETURN(double timestamp, ParseDouble(fields[0]));
    std::vector<double> densities(fields.size() - 1);
    for (size_t i = 1; i < fields.size(); ++i) {
      RP_ASSIGN_OR_RETURN(densities[i - 1], ParseDouble(fields[i]));
    }
    if (num_segments == -1) {
      num_segments = static_cast<int>(densities.size());
    } else if (static_cast<int>(densities.size()) != num_segments) {
      return Status::IOError(
          StrPrintf("snapshot rows disagree on segment count (%d vs %zu)",
                    num_segments, densities.size()));
    }
    rows.emplace_back(timestamp, std::move(densities));
  }
  if (num_segments < 0) return Status::IOError("empty series file " + path);

  SnapshotSeries series(num_segments);
  for (auto& [timestamp, densities] : rows) {
    RP_RETURN_IF_ERROR(series.Append(timestamp, std::move(densities)));
  }
  return series;
}

}  // namespace roadpart
