#include "temporal/series_io.h"

#include <sstream>

#include "common/durable_io.h"
#include "common/string_util.h"

namespace roadpart {

namespace {
constexpr char kSeriesFormat[] = "snapshot-series";
constexpr int kSeriesVersion = 1;
}  // namespace

Status SaveSnapshotSeries(const SnapshotSeries& series,
                          const std::string& path,
                          const RetryOptions& retry) {
  std::ostringstream out;
  out << "# segments: " << series.num_segments() << "\n";
  for (int t = 0; t < series.num_snapshots(); ++t) {
    out << StrPrintf("%.3f", series.timestamp(t));
    for (double d : series.densities(t)) {
      out << StrPrintf(",%.9f", d);
    }
    out << "\n";
  }
  return WriteArtifact(path, kSeriesFormat, kSeriesVersion, out.str(), retry);
}

Result<SnapshotSeries> LoadSnapshotSeries(const std::string& path,
                                          const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = kSeriesFormat;
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));

  // A file that does not end in '\n' lost its tail mid-write: the last row
  // would otherwise parse as a silently shortened (but numerically valid)
  // snapshot — e.g. "120,0.1,0." reads as density 0.0. Refuse it outright.
  if (!payload.empty() && payload.back() != '\n') {
    return Status::Corruption(
        path + ": no trailing newline — last snapshot row is truncated");
  }

  std::istringstream in(payload);
  std::string line;
  int num_segments = -1;
  int row_number = 0;
  std::vector<std::pair<double, std::vector<double>>> rows;
  while (std::getline(in, line)) {
    ++row_number;
    // Reject CRLF before Trim (Trim would silently eat the '\r'): a series
    // round-tripped through Windows tooling must be converted, not guessed
    // at, because '\r' inside a field corrupts the final density of the row.
    if (line.find('\r') != std::string::npos) {
      return Status::InvalidArgument(
          StrPrintf("%s line %d: CRLF line ending — convert the file to "
                    "LF-only before loading",
                    path.c_str(), row_number));
    }
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    auto fields = Split(t, ',');
    if (fields.size() < 2) {
      return Status::IOError("snapshot row needs a timestamp and densities");
    }
    RP_ASSIGN_OR_RETURN(double timestamp, ParseDouble(fields[0]));
    std::vector<double> densities(fields.size() - 1);
    for (size_t i = 1; i < fields.size(); ++i) {
      RP_ASSIGN_OR_RETURN(densities[i - 1], ParseDouble(fields[i]));
    }
    if (num_segments == -1) {
      num_segments = static_cast<int>(densities.size());
    } else if (static_cast<int>(densities.size()) != num_segments) {
      return Status::IOError(
          StrPrintf("snapshot rows disagree on segment count (%d vs %zu)",
                    num_segments, densities.size()));
    }
    rows.emplace_back(timestamp, std::move(densities));
  }
  if (num_segments < 0) return Status::IOError("empty series file " + path);

  SnapshotSeries series(num_segments);
  for (auto& [timestamp, densities] : rows) {
    RP_RETURN_IF_ERROR(series.Append(timestamp, std::move(densities)));
  }
  return series;
}

}  // namespace roadpart
