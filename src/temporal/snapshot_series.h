#ifndef ROADPART_TEMPORAL_SNAPSHOT_SERIES_H_
#define ROADPART_TEMPORAL_SNAPSHOT_SERIES_H_

#include <vector>

#include "common/status.h"

namespace roadpart {

/// A time series of per-segment density snapshots — the input to the
/// paper's "partitioning the network repeatedly at regular intervals of
/// time" workflow (the D1 data is exactly such a series: 120 snapshots at
/// 2-minute intervals).
class SnapshotSeries {
 public:
  /// Creates a series for a network with `num_segments` road segments.
  explicit SnapshotSeries(int num_segments) : num_segments_(num_segments) {}

  int num_segments() const { return num_segments_; }
  int num_snapshots() const { return static_cast<int>(snapshots_.size()); }

  /// Appends a snapshot; densities must have num_segments() entries and the
  /// timestamp must be strictly increasing.
  Status Append(double timestamp_seconds, std::vector<double> densities);

  double timestamp(int t) const { return timestamps_[t]; }
  const std::vector<double>& densities(int t) const { return snapshots_[t]; }

  /// Mean density over all segments at snapshot t (the network-level
  /// congestion curve).
  double MeanDensity(int t) const;

  /// Per-segment temporal mean across all snapshots.
  std::vector<double> SegmentMeans() const;

  /// Per-segment temporal standard deviation across all snapshots; segments
  /// with high values are the ones whose congestion regime changes.
  std::vector<double> SegmentStdDevs() const;

  /// L1 distance between consecutive snapshots, normalized by segment count
  /// (0 for t = 0) — a cheap change-detection signal.
  double ChangeFrom(int t) const;

  /// Index of the snapshot with the highest mean density (the peak).
  int PeakSnapshot() const;

 private:
  int num_segments_;
  std::vector<double> timestamps_;
  std::vector<std::vector<double>> snapshots_;
};

}  // namespace roadpart

#endif  // ROADPART_TEMPORAL_SNAPSHOT_SERIES_H_
