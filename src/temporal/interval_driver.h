#ifndef ROADPART_TEMPORAL_INTERVAL_DRIVER_H_
#define ROADPART_TEMPORAL_INTERVAL_DRIVER_H_

/// The Section 6.4 interval loop over a snapshot series.
///
/// Where evolution_analyzer.h re-partitions the whole network at every
/// snapshot (the paper's repeated-partitioning workflow), this driver runs
/// the *incremental* regime: one full top-level partition at the first
/// snapshot establishes the regions, then every later snapshot flows through
/// an IncrementalRepartitioner refresh — dirty-region detection, cached cuts
/// for clean regions, warm-started eigensolves for dirty ones. Region ids
/// are kept stable across intervals with a PartitionTracker and quality is
/// measured per interval (ANS), so callers can compare the incremental
/// refresh against full re-partitioning on both cost and quality.

#include <vector>

#include "common/status.h"
#include "core/distributed_repartition.h"
#include "core/partitioner.h"
#include "network/road_graph.h"
#include "temporal/snapshot_series.h"

namespace roadpart {

/// Options for the incremental interval loop.
struct IntervalDriverOptions {
  /// Top-level partition at the first snapshot; its `k` is the region count
  /// the refreshes are bound to.
  PartitionerOptions initial;
  /// Per-interval refresh configuration (inner partitioner, dirty triggers,
  /// warm start, fan-out threads).
  DistributedRepartitionOptions refresh;
};

/// One interval's outcome.
struct IntervalStep {
  double timestamp_seconds = 0.0;
  std::vector<int> assignment;  ///< tracked (stable) sub-partition ids
  int k_final = 0;
  double ans = 0.0;      ///< partition quality at this snapshot
  double churn = 0.0;    ///< fraction of segments changing label vs previous
  double seconds = 0.0;  ///< wall time of this interval's refresh
  RepartitionRefreshStats stats;  ///< dirty/clean/warm counters, phases
};

/// Outcome of driving a whole series.
struct IntervalDriveResult {
  std::vector<int> regions;  ///< the frozen top-level region assignment
  int k_top = 0;             ///< number of regions
  double initial_seconds = 0.0;  ///< cost of the snapshot-0 full partition
  /// One step per snapshot from the first onward. Step 0 is the initial full
  /// partition re-cut into sub-partitions (the engine's cold refresh); later
  /// steps are incremental.
  std::vector<IntervalStep> steps;
};

/// Runs the incremental interval loop over `series`: full partition at
/// snapshot 0 (regions), engine refresh at every snapshot, label tracking
/// and ANS per interval. Deterministic for a fixed configuration — thread
/// counts change wall times only, never any assignment byte.
Result<IntervalDriveResult> DriveIntervals(const RoadGraph& road_graph,
                                           const SnapshotSeries& series,
                                           const IntervalDriverOptions& options);

}  // namespace roadpart

#endif  // ROADPART_TEMPORAL_INTERVAL_DRIVER_H_
