#include "temporal/snapshot_series.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace roadpart {

Status SnapshotSeries::Append(double timestamp_seconds,
                              std::vector<double> densities) {
  if (static_cast<int>(densities.size()) != num_segments_) {
    return Status::InvalidArgument(
        StrPrintf("snapshot has %zu densities for %d segments",
                  densities.size(), num_segments_));
  }
  if (!timestamps_.empty() && timestamp_seconds <= timestamps_.back()) {
    return Status::InvalidArgument("timestamps must strictly increase");
  }
  for (double d : densities) {
    if (d < 0.0) return Status::InvalidArgument("negative density");
  }
  timestamps_.push_back(timestamp_seconds);
  snapshots_.push_back(std::move(densities));
  return Status::OK();
}

double SnapshotSeries::MeanDensity(int t) const {
  const std::vector<double>& snap = snapshots_[t];
  if (snap.empty()) return 0.0;
  double acc = 0.0;
  for (double d : snap) acc += d;
  return acc / static_cast<double>(snap.size());
}

std::vector<double> SnapshotSeries::SegmentMeans() const {
  std::vector<double> means(num_segments_, 0.0);
  if (snapshots_.empty()) return means;
  for (const auto& snap : snapshots_) {
    for (int i = 0; i < num_segments_; ++i) means[i] += snap[i];
  }
  for (double& m : means) m /= static_cast<double>(snapshots_.size());
  return means;
}

std::vector<double> SnapshotSeries::SegmentStdDevs() const {
  std::vector<double> stddevs(num_segments_, 0.0);
  if (snapshots_.size() < 2) return stddevs;
  std::vector<double> means = SegmentMeans();
  for (const auto& snap : snapshots_) {
    for (int i = 0; i < num_segments_; ++i) {
      double d = snap[i] - means[i];
      stddevs[i] += d * d;
    }
  }
  for (double& s : stddevs) {
    s = std::sqrt(s / static_cast<double>(snapshots_.size()));
  }
  return stddevs;
}

double SnapshotSeries::ChangeFrom(int t) const {
  if (t <= 0 || num_segments_ == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < num_segments_; ++i) {
    acc += std::fabs(snapshots_[t][i] - snapshots_[t - 1][i]);
  }
  return acc / static_cast<double>(num_segments_);
}

int SnapshotSeries::PeakSnapshot() const {
  int best = 0;
  double best_mean = -1.0;
  for (int t = 0; t < num_snapshots(); ++t) {
    double m = MeanDensity(t);
    if (m > best_mean) {
      best_mean = m;
      best = t;
    }
  }
  return best;
}

}  // namespace roadpart
