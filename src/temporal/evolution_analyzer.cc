#include "temporal/evolution_analyzer.h"

#include "common/timer.h"
#include "core/partition_tracker.h"
#include "metrics/partition_metrics.h"

namespace roadpart {

Result<EvolutionResult> AnalyzeEvolution(const RoadGraph& road_graph,
                                         const SnapshotSeries& series,
                                         const EvolutionOptions& options) {
  if (series.num_segments() != road_graph.num_nodes()) {
    return Status::InvalidArgument(
        "series segment count does not match the road graph");
  }
  if (series.num_snapshots() == 0) {
    return Status::InvalidArgument("empty snapshot series");
  }

  Partitioner partitioner(options.partitioner);
  PartitionTracker tracker;
  RoadGraph graph = road_graph;  // mutable copy for per-snapshot features

  EvolutionResult result;
  result.steps.reserve(series.num_snapshots());
  double churn_sum = 0.0;
  int churn_count = 0;

  for (int t = 0; t < series.num_snapshots(); ++t) {
    RP_RETURN_IF_ERROR(graph.SetFeatures(series.densities(t)));
    Timer timer;
    RP_ASSIGN_OR_RETURN(PartitionOutcome outcome,
                        partitioner.PartitionRoadGraph(graph));
    EvolutionStep step;
    step.seconds = timer.Seconds();
    step.timestamp_seconds = series.timestamp(t);
    step.k_final = outcome.k_final;
    step.num_supernodes = outcome.num_supernodes;
    step.mean_density = series.MeanDensity(t);
    RP_ASSIGN_OR_RETURN(step.assignment, tracker.Align(outcome.assignment));
    step.churn = tracker.last_churn();
    RP_ASSIGN_OR_RETURN(
        double ans,
        AverageNcutSilhouette(graph.adjacency(), graph.features(),
                              outcome.assignment));
    step.ans = ans;

    if (t > 0) {
      churn_sum += step.churn;
      ++churn_count;
      double running_mean = churn_sum / churn_count;
      if (step.churn > options.regime_threshold &&
          step.churn > 2.0 * running_mean) {
        result.regime_changes.push_back(t);
      }
    }
    result.steps.push_back(std::move(step));
  }
  result.mean_churn = churn_count > 0 ? churn_sum / churn_count : 0.0;
  return result;
}

}  // namespace roadpart
