#ifndef ROADPART_TEMPORAL_SERIES_IO_H_
#define ROADPART_TEMPORAL_SERIES_IO_H_

#include <string>

#include "common/durable_io.h"
#include "common/status.h"
#include "temporal/snapshot_series.h"

namespace roadpart {

/// Saves a snapshot series as time-major CSV:
///   timestamp,d0,d1,...,d{n-1}
/// One row per snapshot; a `# segments: n` comment precedes the data. The
/// file is written atomically inside the checksummed "snapshot-series"
/// artifact envelope (common/durable_io.h).
Status SaveSnapshotSeries(const SnapshotSeries& series,
                          const std::string& path,
                          const RetryOptions& retry = {});

/// Loads a series saved by SaveSnapshotSeries (or any CSV in that layout).
/// Enveloped files are checksum-verified; any file is rejected with a typed
/// Status when the trailing row is truncated (kCorruption) or the line
/// endings are CRLF (kInvalidArgument).
Result<SnapshotSeries> LoadSnapshotSeries(const std::string& path,
                                          const RetryOptions& retry = {});

}  // namespace roadpart

#endif  // ROADPART_TEMPORAL_SERIES_IO_H_
