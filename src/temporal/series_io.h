#ifndef ROADPART_TEMPORAL_SERIES_IO_H_
#define ROADPART_TEMPORAL_SERIES_IO_H_

#include <string>

#include "common/status.h"
#include "temporal/snapshot_series.h"

namespace roadpart {

/// Saves a snapshot series as time-major CSV:
///   timestamp,d0,d1,...,d{n-1}
/// One row per snapshot; a `# segments: n` comment precedes the data.
Status SaveSnapshotSeries(const SnapshotSeries& series,
                          const std::string& path);

/// Loads a series saved by SaveSnapshotSeries (or any CSV in that layout).
Result<SnapshotSeries> LoadSnapshotSeries(const std::string& path);

}  // namespace roadpart

#endif  // ROADPART_TEMPORAL_SERIES_IO_H_
