#include "graph/graph_builder.h"

// Header-only today; the translation unit anchors the library target and
// keeps room for non-template builder logic.

namespace roadpart {}  // namespace roadpart
