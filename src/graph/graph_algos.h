#ifndef ROADPART_GRAPH_GRAPH_ALGOS_H_
#define ROADPART_GRAPH_GRAPH_ALGOS_H_

#include <vector>

#include "graph/csr_graph.h"

namespace roadpart {

/// Unweighted BFS hop distances from `source` (-1 for unreachable nodes).
std::vector<int> BfsDistances(const CsrGraph& graph, int source);

/// Node ids of the largest connected component.
std::vector<int> LargestComponent(const CsrGraph& graph);

/// Basic structural statistics used by generators and reports.
struct GraphStats {
  int num_nodes = 0;
  int64_t num_edges = 0;
  int num_components = 0;
  double avg_degree = 0.0;
  int max_degree = 0;
  int min_degree = 0;
};

GraphStats ComputeGraphStats(const CsrGraph& graph);

/// Groups node ids by their assignment label: result[p] lists the nodes with
/// assignment p. Labels must be dense in [0, num_groups).
std::vector<std::vector<int>> GroupByAssignment(
    const std::vector<int>& assignment, int num_groups);

}  // namespace roadpart

#endif  // ROADPART_GRAPH_GRAPH_ALGOS_H_
