#ifndef ROADPART_GRAPH_GRAPH_BUILDER_H_
#define ROADPART_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Incremental undirected-graph builder. Collects edges, then Build() freezes
/// them into a CsrGraph. Duplicate edges are merged (weights summed).
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_nodes) : num_nodes_(num_nodes) {}

  /// Adds an undirected edge; self-loops are silently ignored at Build.
  void AddEdge(int u, int v, double weight = 1.0) {
    edges_.push_back({u, v, weight});
  }

  int num_nodes() const { return num_nodes_; }
  size_t num_pending_edges() const { return edges_.size(); }

  Result<CsrGraph> Build() const { return CsrGraph::FromEdges(num_nodes_, edges_); }

 private:
  int num_nodes_;
  std::vector<Edge> edges_;
};

/// Re-weights an existing graph with per-edge weights computed by `fn(u, v)`.
/// Topology is preserved.
template <typename WeightFn>
CsrGraph ReweightGraph(const CsrGraph& graph, WeightFn fn) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(graph.num_edges()));
  for (int u = 0; u < graph.num_nodes(); ++u) {
    for (int v : graph.Neighbors(u)) {
      if (u < v) edges.push_back({u, v, fn(u, v)});
    }
  }
  auto result = CsrGraph::FromEdges(graph.num_nodes(), edges);
  // Topology came from a valid graph; construction cannot fail.
  return std::move(result).value();
}

}  // namespace roadpart

#endif  // ROADPART_GRAPH_GRAPH_BUILDER_H_
