#include "graph/csr_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"

namespace roadpart {

Result<CsrGraph> CsrGraph::FromEdges(int num_nodes,
                                     const std::vector<Edge>& edges) {
  if (num_nodes < 0) return Status::InvalidArgument("negative node count");
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) {
      return Status::OutOfRange(
          StrPrintf("edge (%d,%d) outside [0,%d)", e.u, e.v, num_nodes));
    }
  }

  // Store each non-loop edge in both directions, then sort-and-merge per row.
  std::vector<int64_t> counts(static_cast<size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    counts[e.u + 1]++;
    counts[e.v + 1]++;
  }
  for (int i = 0; i < num_nodes; ++i) counts[i + 1] += counts[i];

  std::vector<std::pair<int, double>> slots(counts[num_nodes]);
  {
    std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
    for (const Edge& e : edges) {
      if (e.u == e.v) continue;
      slots[cursor[e.u]++] = {e.v, e.weight};
      slots[cursor[e.v]++] = {e.u, e.weight};
    }
  }

  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  g.neighbors_.reserve(slots.size());
  g.weights_.reserve(slots.size());
  for (int v = 0; v < num_nodes; ++v) {
    auto begin = slots.begin() + counts[v];
    auto end = slots.begin() + counts[v + 1];
    std::sort(begin, end,
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = begin; it != end;) {
      int nbr = it->first;
      double w = 0.0;
      while (it != end && it->first == nbr) {
        w += it->second;
        ++it;
      }
      g.neighbors_.push_back(nbr);
      g.weights_.push_back(w);
    }
    g.offsets_[v + 1] = static_cast<int64_t>(g.neighbors_.size());
  }
  RP_DCHECK_OK(g.Validate());
  return g;
}

CsrGraph CsrGraph::FromRawParts(int num_nodes, std::vector<int64_t> offsets,
                                std::vector<int> neighbors,
                                std::vector<double> weights) {
  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  g.weights_ = std::move(weights);
  RP_DCHECK_OK(g.Validate());
  return g;
}

Status CsrGraph::Validate() const {
  if (num_nodes_ < 0) return Status::Internal("negative node count");
  // A default-constructed graph keeps all arrays empty; that is valid.
  if (num_nodes_ == 0 && offsets_.empty() && neighbors_.empty() &&
      weights_.empty()) {
    return Status::OK();
  }
  if (offsets_.size() != static_cast<size_t>(num_nodes_) + 1) {
    return Status::Internal(
        StrPrintf("offset array has %zu entries for %d nodes",
                  offsets_.size(), num_nodes_));
  }
  if (offsets_.front() != 0) return Status::Internal("offsets[0] != 0");
  if (offsets_.back() != static_cast<int64_t>(neighbors_.size())) {
    return Status::Internal("offsets back does not cover neighbor array");
  }
  if (weights_.size() != neighbors_.size()) {
    return Status::Internal("weights/neighbors size mismatch");
  }
  // Monotonicity must be established for the whole array before any row is
  // dereferenced — with front == 0 and back == size it bounds every row span,
  // so the loops below cannot read outside the neighbor arrays.
  for (int v = 0; v < num_nodes_; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      return Status::Internal(StrPrintf("offsets not monotone at node %d", v));
    }
  }
  for (int v = 0; v < num_nodes_; ++v) {
    for (int64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      int u = neighbors_[i];
      if (u < 0 || u >= num_nodes_) {
        return Status::Internal(
            StrPrintf("neighbor %d of node %d out of range", u, v));
      }
      if (u == v) {
        return Status::Internal(StrPrintf("self-loop at node %d", v));
      }
      if (i > offsets_[v] && neighbors_[i - 1] >= u) {
        return Status::Internal(
            StrPrintf("neighbors of node %d not strictly sorted", v));
      }
      if (!std::isfinite(weights_[i])) {
        return Status::Internal(
            StrPrintf("non-finite weight on edge (%d,%d)", v, u));
      }
    }
  }
  // Symmetry: the dual graph is undirected, so every stored arc must have its
  // reverse with an identical weight.
  for (int v = 0; v < num_nodes_; ++v) {
    for (int64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      int u = neighbors_[i];
      if (EdgeWeight(u, v) != weights_[i]) {
        return Status::Internal(
            StrPrintf("asymmetric adjacency between %d and %d", v, u));
      }
    }
  }
  return Status::OK();
}

double CsrGraph::WeightedDegree(int v) const {
  double acc = 0.0;
  for (double w : NeighborWeights(v)) acc += w;
  return acc;
}

bool CsrGraph::HasEdge(int u, int v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double CsrGraph::EdgeWeight(int u, int v) const {
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  return weights_[offsets_[u] + (it - nbrs.begin())];
}

double CsrGraph::TotalWeight() const {
  double acc = 0.0;
  for (double w : weights_) acc += w;
  return acc / 2.0;
}

SparseMatrix CsrGraph::ToSparseMatrix() const {
  std::vector<Triplet> entries;
  entries.reserve(neighbors_.size());
  for (int v = 0; v < num_nodes_; ++v) {
    for (int64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      entries.push_back({v, neighbors_[i], weights_[i]});
    }
  }
  auto result = SparseMatrix::FromTriplets(num_nodes_, num_nodes_, entries);
  RP_CHECK(result.ok());
  return std::move(result).value();
}

CsrGraph CsrGraph::InducedSubgraph(const std::vector<int>& nodes) const {
  std::unordered_map<int, int> local;
  local.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    RP_CHECK(nodes[i] >= 0 && nodes[i] < num_nodes_);
    local[nodes[i]] = static_cast<int>(i);
  }
  std::vector<Edge> edges;
  for (size_t i = 0; i < nodes.size(); ++i) {
    int v = nodes[i];
    auto nbrs = Neighbors(v);
    auto wts = NeighborWeights(v);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      if (nbrs[j] <= v) continue;  // each undirected edge once
      auto it = local.find(nbrs[j]);
      if (it != local.end()) {
        edges.push_back({static_cast<int>(i), it->second, wts[j]});
      }
    }
  }
  auto result = FromEdges(static_cast<int>(nodes.size()), edges);
  RP_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace roadpart
