#include "graph/connected_components.h"

#include <queue>

#include "common/logging.h"

namespace roadpart {

namespace {

// Shared BFS labelling; `edge_allowed(u, v)` filters edges.
template <typename EdgeFilter>
ComponentLabels BfsComponents(const CsrGraph& graph, EdgeFilter edge_allowed) {
  const int n = graph.num_nodes();
  ComponentLabels out;
  out.component.assign(n, -1);
  std::queue<int> fifo;
  for (int start = 0; start < n; ++start) {
    if (out.component[start] != -1) continue;
    const int id = out.num_components++;
    out.component[start] = id;
    fifo.push(start);
    while (!fifo.empty()) {
      int u = fifo.front();
      fifo.pop();
      for (int v : graph.Neighbors(u)) {
        if (out.component[v] == -1 && edge_allowed(u, v)) {
          out.component[v] = id;
          fifo.push(v);
        }
      }
    }
  }
  return out;
}

}  // namespace

ComponentLabels ConnectedComponents(const CsrGraph& graph) {
  return BfsComponents(graph, [](int, int) { return true; });
}

ComponentLabels LabelConstrainedComponents(const CsrGraph& graph,
                                           const std::vector<int>& labels) {
  RP_CHECK(static_cast<int>(labels.size()) == graph.num_nodes());
  return BfsComponents(
      graph, [&labels](int u, int v) { return labels[u] == labels[v]; });
}

std::vector<std::vector<int>> ComponentsOfSubset(
    const CsrGraph& graph, const std::vector<int>& subset) {
  std::vector<char> in_subset(graph.num_nodes(), 0);
  for (int v : subset) {
    RP_CHECK(v >= 0 && v < graph.num_nodes());
    in_subset[v] = 1;
  }
  std::vector<char> visited(graph.num_nodes(), 0);
  std::vector<std::vector<int>> components;
  std::queue<int> fifo;
  for (int start : subset) {
    if (visited[start]) continue;
    components.emplace_back();
    visited[start] = 1;
    fifo.push(start);
    while (!fifo.empty()) {
      int u = fifo.front();
      fifo.pop();
      components.back().push_back(u);
      for (int v : graph.Neighbors(u)) {
        if (in_subset[v] && !visited[v]) {
          visited[v] = 1;
          fifo.push(v);
        }
      }
    }
  }
  return components;
}

bool IsSubsetConnected(const CsrGraph& graph, const std::vector<int>& subset) {
  if (subset.size() <= 1) return true;
  return ComponentsOfSubset(graph, subset).size() == 1;
}

}  // namespace roadpart
