#ifndef ROADPART_GRAPH_CONNECTED_COMPONENTS_H_
#define ROADPART_GRAPH_CONNECTED_COMPONENTS_H_

#include <vector>

#include "graph/csr_graph.h"

namespace roadpart {

/// Result of a connected-components pass: `component[v]` is the 0-based
/// component id of node v; ids are dense in [0, num_components).
struct ComponentLabels {
  std::vector<int> component;
  int num_components = 0;
};

/// Standard FIFO (BFS) connected components over the whole graph —
/// the substrate the paper's Algorithm 1 uses (O(max(n, m))).
ComponentLabels ConnectedComponents(const CsrGraph& graph);

/// Connected components where an edge (u,v) only counts when
/// `labels[u] == labels[v]` — the supernode-creation step of Algorithm 1:
/// nodes are merged when clustered together AND adjacent in the road graph.
ComponentLabels LabelConstrainedComponents(const CsrGraph& graph,
                                           const std::vector<int>& labels);

/// Components of the subgraph induced on `subset` (ids refer to positions in
/// `subset`). Returns one vector of *original* node ids per component.
std::vector<std::vector<int>> ComponentsOfSubset(const CsrGraph& graph,
                                                 const std::vector<int>& subset);

/// True if the induced subgraph on `subset` is connected (empty and singleton
/// subsets count as connected) — condition C.2 of the problem definition.
bool IsSubsetConnected(const CsrGraph& graph, const std::vector<int>& subset);

}  // namespace roadpart

#endif  // ROADPART_GRAPH_CONNECTED_COMPONENTS_H_
