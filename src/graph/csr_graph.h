#ifndef ROADPART_GRAPH_CSR_GRAPH_H_
#define ROADPART_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "linalg/sparse_matrix.h"

namespace roadpart {

/// One undirected weighted edge used during graph assembly.
struct Edge {
  int u;
  int v;
  double weight = 1.0;
};

/// Immutable undirected graph in compressed-sparse-row form. Parallel edges
/// are merged (weights summed) and self-loops dropped at construction.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an undirected edge list over nodes [0, num_nodes).
  static Result<CsrGraph> FromEdges(int num_nodes,
                                    const std::vector<Edge>& edges);

  /// Adopts pre-built CSR arrays without the sort-and-merge pass. The caller
  /// promises the Validate() invariants (monotone offsets, sorted in-bounds
  /// neighbor rows, symmetric adjacency, finite weights); the promise is
  /// audited with RP_DCHECK in checked builds.
  static CsrGraph FromRawParts(int num_nodes, std::vector<int64_t> offsets,
                               std::vector<int> neighbors,
                               std::vector<double> weights);

  /// Full structural audit of the CSR representation: offset array shape and
  /// monotonicity, strictly-sorted in-bounds neighbor rows, no self-loops,
  /// finite weights, and adjacency symmetry (every (u,v,w) has a matching
  /// (v,u,w) — required of the dual road graph). Returns the first violation.
  /// O(E log deg); run behind RP_DCHECK on hot paths.
  Status Validate() const;

  int num_nodes() const { return num_nodes_; }

  /// Number of undirected edges (each stored twice internally).
  int64_t num_edges() const {
    return static_cast<int64_t>(neighbors_.size()) / 2;
  }

  int Degree(int v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sum of incident edge weights.
  double WeightedDegree(int v) const;

  std::span<const int> Neighbors(int v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  std::span<const double> NeighborWeights(int v) const {
    return {weights_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True if u and v are adjacent. O(log deg(u)).
  bool HasEdge(int u, int v) const;

  /// Weight of edge (u, v), or 0 when absent.
  double EdgeWeight(int u, int v) const;

  /// Sum of all edge weights (each undirected edge counted once).
  double TotalWeight() const;

  /// Weighted adjacency matrix as CSR (symmetric).
  SparseMatrix ToSparseMatrix() const;

  /// Returns the induced subgraph on `nodes` (relabelled 0..|nodes|-1, in the
  /// given order).
  CsrGraph InducedSubgraph(const std::vector<int>& nodes) const;

  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<int>& neighbors() const { return neighbors_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  int num_nodes_ = 0;
  std::vector<int64_t> offsets_;  // size num_nodes_+1
  std::vector<int> neighbors_;    // size 2*num_edges
  std::vector<double> weights_;   // parallel to neighbors_
};

}  // namespace roadpart

#endif  // ROADPART_GRAPH_CSR_GRAPH_H_
