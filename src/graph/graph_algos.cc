#include "graph/graph_algos.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "graph/connected_components.h"

namespace roadpart {

std::vector<int> BfsDistances(const CsrGraph& graph, int source) {
  RP_CHECK(source >= 0 && source < graph.num_nodes());
  std::vector<int> dist(graph.num_nodes(), -1);
  std::queue<int> fifo;
  dist[source] = 0;
  fifo.push(source);
  while (!fifo.empty()) {
    int u = fifo.front();
    fifo.pop();
    for (int v : graph.Neighbors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        fifo.push(v);
      }
    }
  }
  return dist;
}

std::vector<int> LargestComponent(const CsrGraph& graph) {
  ComponentLabels labels = ConnectedComponents(graph);
  std::vector<int> sizes(labels.num_components, 0);
  for (int c : labels.component) sizes[c]++;
  int best = 0;
  for (int c = 1; c < labels.num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  std::vector<int> nodes;
  nodes.reserve(labels.num_components > 0 ? sizes[best] : 0);
  for (int v = 0; v < graph.num_nodes(); ++v) {
    if (labels.component[v] == best) nodes.push_back(v);
  }
  return nodes;
}

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  s.num_components = ConnectedComponents(graph).num_components;
  if (s.num_nodes > 0) {
    s.min_degree = graph.Degree(0);
    for (int v = 0; v < s.num_nodes; ++v) {
      int d = graph.Degree(v);
      s.max_degree = std::max(s.max_degree, d);
      s.min_degree = std::min(s.min_degree, d);
    }
    s.avg_degree = 2.0 * static_cast<double>(s.num_edges) / s.num_nodes;
  }
  return s;
}

std::vector<std::vector<int>> GroupByAssignment(
    const std::vector<int>& assignment, int num_groups) {
  std::vector<std::vector<int>> groups(num_groups);
  for (size_t v = 0; v < assignment.size(); ++v) {
    int p = assignment[v];
    RP_CHECK(p >= 0 && p < num_groups);
    groups[p].push_back(static_cast<int>(v));
  }
  return groups;
}

}  // namespace roadpart
