#include "network/density_sanitizer.h"

#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace roadpart {

const char* DensityPolicyName(DensityPolicy policy) {
  switch (policy) {
    case DensityPolicy::kReject:
      return "reject";
    case DensityPolicy::kClampAndWarn:
      return "clamp-and-warn";
  }
  return "?";
}

Result<std::vector<double>> SanitizeDensities(std::vector<double> densities,
                                              DensityPolicy policy,
                                              int expected_count,
                                              DensityRepairReport* report) {
  DensityRepairReport local;
  DensityRepairReport& rep = report != nullptr ? *report : local;
  rep = DensityRepairReport{};

  const int n = static_cast<int>(densities.size());
  if (expected_count >= 0 && n != expected_count) {
    if (policy == DensityPolicy::kReject) {
      return Status::InvalidArgument(
          StrPrintf("density vector has %d entries for %d segments", n,
                    expected_count));
    }
    if (n < expected_count) {
      rep.padded = expected_count - n;
      densities.resize(expected_count, 0.0);
      rep.warnings.push_back(StrPrintf(
          "density vector short by %d entries; padded with zeros (stale or "
          "truncated feed?)",
          rep.padded));
    } else {
      rep.truncated = n - expected_count;
      densities.resize(expected_count);
      rep.warnings.push_back(StrPrintf(
          "density vector has %d surplus entries; truncated", rep.truncated));
    }
  }

  // Clamp target for +Inf: the largest finite value present, so an overflowed
  // sensor reads as "most congested seen" rather than rescaling everything.
  double max_finite = 0.0;
  for (double d : densities) {
    if (std::isfinite(d) && d > max_finite) max_finite = d;
  }

  for (size_t i = 0; i < densities.size(); ++i) {
    double d = densities[i];
    if (std::isnan(d)) {
      if (policy == DensityPolicy::kReject) {
        return Status::InvalidArgument(
            StrPrintf("density %zu is NaN", i));
      }
      densities[i] = 0.0;
      ++rep.nan_replaced;
    } else if (std::isinf(d)) {
      if (policy == DensityPolicy::kReject) {
        return Status::InvalidArgument(
            StrPrintf("density %zu is %sinfinite", i, d < 0.0 ? "-" : "+"));
      }
      densities[i] = d < 0.0 ? 0.0 : max_finite;
      ++rep.inf_clamped;
    } else if (d < 0.0) {
      if (policy == DensityPolicy::kReject) {
        return Status::InvalidArgument(
            StrPrintf("density %zu is negative (%g)", i, d));
      }
      densities[i] = 0.0;
      ++rep.negative_clamped;
    }
  }
  if (rep.nan_replaced > 0) {
    rep.warnings.push_back(
        StrPrintf("replaced %d NaN densities with 0", rep.nan_replaced));
  }
  if (rep.inf_clamped > 0) {
    rep.warnings.push_back(
        StrPrintf("clamped %d infinite densities", rep.inf_clamped));
  }
  if (rep.negative_clamped > 0) {
    rep.warnings.push_back(StrPrintf("clamped %d negative densities to 0",
                                     rep.negative_clamped));
  }
  return densities;
}

}  // namespace roadpart
