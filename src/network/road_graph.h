#ifndef ROADPART_NETWORK_ROAD_GRAPH_H_
#define ROADPART_NETWORK_ROAD_GRAPH_H_

#include <vector>

#include "graph/csr_graph.h"
#include "network/road_network.h"

namespace roadpart {

/// The road graph G = (V, E) of Definition 2: the dual of the road network.
/// Node i is road segment i; an undirected edge joins two segments that share
/// at least one intersection. Star topologies in the network become cliques
/// here; linear stretches stay linear. Features are the segment densities.
class RoadGraph {
 public:
  RoadGraph() = default;

  /// Builds the dual graph from a network; features are snapshotted from the
  /// network's current densities.
  static RoadGraph FromNetwork(const RoadNetwork& network);

  /// Constructs directly from an adjacency graph + features (for tests and
  /// for workloads that bypass RoadNetwork).
  static Result<RoadGraph> FromParts(CsrGraph adjacency,
                                     std::vector<double> features);

  int num_nodes() const { return adjacency_.num_nodes(); }
  const CsrGraph& adjacency() const { return adjacency_; }

  /// v_i.f — the traffic density of segment i.
  const std::vector<double>& features() const { return features_; }

  /// Replaces the feature vector (e.g. for a new timestamp).
  Status SetFeatures(std::vector<double> features);

 private:
  CsrGraph adjacency_;
  std::vector<double> features_;
};

/// Builds only the dual adjacency structure (binary, unweighted).
CsrGraph BuildDualAdjacency(const RoadNetwork& network);

}  // namespace roadpart

#endif  // ROADPART_NETWORK_ROAD_GRAPH_H_
