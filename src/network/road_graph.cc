#include "network/road_graph.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace roadpart {

CsrGraph BuildDualAdjacency(const RoadNetwork& network) {
  // Every intersection induces a clique over its incident segments. Pairs can
  // repeat (two segments sharing both endpoints, e.g. the two directions of a
  // two-way road); dedupe so the adjacency stays binary.
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < network.num_intersections(); ++i) {
    const std::vector<int>& inc = network.SegmentsAt(i);
    for (size_t a = 0; a < inc.size(); ++a) {
      for (size_t b = a + 1; b < inc.size(); ++b) {
        int u = inc[a];
        int v = inc[b];
        if (u > v) std::swap(u, v);
        if (u != v) pairs.emplace_back(u, v);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  for (const auto& [u, v] : pairs) edges.push_back({u, v, 1.0});
  auto graph = CsrGraph::FromEdges(network.num_segments(), edges);
  RP_CHECK(graph.ok());
  return std::move(graph).value();
}

RoadGraph RoadGraph::FromNetwork(const RoadNetwork& network) {
  RoadGraph rg;
  rg.adjacency_ = BuildDualAdjacency(network);
  rg.features_ = network.Densities();
  return rg;
}

Result<RoadGraph> RoadGraph::FromParts(CsrGraph adjacency,
                                       std::vector<double> features) {
  if (static_cast<int>(features.size()) != adjacency.num_nodes()) {
    return Status::InvalidArgument(
        StrPrintf("feature count %zu != node count %d", features.size(),
                  adjacency.num_nodes()));
  }
  RoadGraph rg;
  rg.adjacency_ = std::move(adjacency);
  rg.features_ = std::move(features);
  return rg;
}

Status RoadGraph::SetFeatures(std::vector<double> features) {
  if (static_cast<int>(features.size()) != adjacency_.num_nodes()) {
    return Status::InvalidArgument(
        StrPrintf("feature count %zu != node count %d", features.size(),
                  adjacency_.num_nodes()));
  }
  features_ = std::move(features);
  return Status::OK();
}

}  // namespace roadpart
