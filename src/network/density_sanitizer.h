#ifndef ROADPART_NETWORK_DENSITY_SANITIZER_H_
#define ROADPART_NETWORK_DENSITY_SANITIZER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace roadpart {

/// What to do with a density vector that fails validation (NaN/Inf entries,
/// negative values, length mismatch against the segment count).
enum class DensityPolicy {
  /// Return InvalidArgument naming the first offending entry; the caller
  /// gets no partition from poisoned input (production default).
  kReject,
  /// Repair in place — NaN/negative -> 0, +Inf -> largest finite value,
  /// short vectors padded with zeros, long vectors truncated — and report
  /// every repair so the caller can surface the degradation.
  kClampAndWarn,
};

const char* DensityPolicyName(DensityPolicy policy);

/// Per-category repair counts from one SanitizeDensities pass.
struct DensityRepairReport {
  int nan_replaced = 0;       ///< NaN entries zeroed
  int inf_clamped = 0;        ///< +/-Inf entries clamped
  int negative_clamped = 0;   ///< finite negative entries zeroed
  int padded = 0;             ///< zeros appended for a short vector
  int truncated = 0;          ///< trailing entries dropped from a long vector
  std::vector<std::string> warnings;  ///< one human-readable line per repair class

  int total_repaired() const {
    return nan_replaced + inf_clamped + negative_clamped + padded + truncated;
  }
};

/// Validates (kReject) or repairs (kClampAndWarn) a density vector before it
/// enters the partitioning pipeline. `expected_count` is the segment count
/// the vector must match; pass a negative value to skip the length check.
/// On success returns the (possibly repaired) vector; `report`, when given,
/// receives the repair counts either way.
Result<std::vector<double>> SanitizeDensities(
    std::vector<double> densities, DensityPolicy policy,
    int expected_count = -1, DensityRepairReport* report = nullptr);

}  // namespace roadpart

#endif  // ROADPART_NETWORK_DENSITY_SANITIZER_H_
