#include "network/network_io.h"

#include <limits>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace roadpart {

namespace {
constexpr char kRoadnetFormat[] = "roadnet";
constexpr char kDensitiesFormat[] = "densities";
constexpr char kPartitionFormat[] = "partition-csv";
constexpr int kNetworkIoVersion = 1;
}  // namespace

Status SaveRoadNetwork(const RoadNetwork& network, const std::string& path,
                       const RetryOptions& retry) {
  std::ostringstream out;
  out << "# roadnet v1\n";
  out << "I " << network.num_intersections() << "\n";
  for (const Intersection& it : network.intersections()) {
    out << StrPrintf("%.6f %.6f\n", it.position.x, it.position.y);
  }
  out << "S " << network.num_segments() << "\n";
  for (const RoadSegment& s : network.segments()) {
    out << StrPrintf("%d %d %.6f %.9f\n", s.from, s.to, s.length, s.density);
  }
  return WriteArtifact(path, kRoadnetFormat, kNetworkIoVersion, out.str(),
                       retry);
}

Result<RoadNetwork> LoadRoadNetwork(const std::string& path,
                                    const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = kRoadnetFormat;
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));
  std::istringstream in(payload);
  std::string line;

  auto next_line = [&](std::string& out_line) -> bool {
    while (std::getline(in, out_line)) {
      std::string_view t = Trim(out_line);
      if (!t.empty() && t[0] != '#') {
        out_line = std::string(t);
        return true;
      }
    }
    return false;
  };

  if (!next_line(line)) return Status::IOError("empty network file " + path);
  std::istringstream header_i(line);
  char tag = 0;
  int ni = 0;
  header_i >> tag >> ni;
  if (tag != 'I' || ni < 0) {
    return Status::IOError("malformed intersection header in " + path);
  }
  std::vector<Intersection> intersections(ni);
  for (int i = 0; i < ni; ++i) {
    if (!next_line(line)) return Status::IOError("truncated intersections");
    std::istringstream ss(line);
    if (!(ss >> intersections[i].position.x >> intersections[i].position.y)) {
      return Status::IOError(StrPrintf("bad intersection line %d", i));
    }
  }

  if (!next_line(line)) return Status::IOError("missing segment header");
  std::istringstream header_s(line);
  int ns = 0;
  header_s >> tag >> ns;
  if (tag != 'S' || ns < 0) {
    return Status::IOError("malformed segment header in " + path);
  }
  std::vector<RoadSegment> segments(ns);
  for (int i = 0; i < ns; ++i) {
    if (!next_line(line)) return Status::IOError("truncated segments");
    std::istringstream ss(line);
    if (!(ss >> segments[i].from >> segments[i].to >> segments[i].length >>
          segments[i].density)) {
      return Status::IOError(StrPrintf("bad segment line %d", i));
    }
  }
  return RoadNetwork::Create(std::move(intersections), std::move(segments));
}

Status SaveDensities(const std::vector<double>& densities,
                     const std::string& path, const RetryOptions& retry) {
  std::ostringstream out;
  for (double d : densities) out << StrPrintf("%.9f\n", d);
  return WriteArtifact(path, kDensitiesFormat, kNetworkIoVersion, out.str(),
                       retry);
}

Result<std::vector<double>> LoadDensities(const std::string& path,
                                          const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = kDensitiesFormat;
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));
  std::istringstream in(payload);
  std::vector<double> densities;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    RP_ASSIGN_OR_RETURN(double d, ParseDouble(t));
    densities.push_back(d);
  }
  // Fault hooks (test-only; compiled to nothing under
  // RP_DISABLE_FAULT_INJECTION): simulate sensor corruption and a short read
  // after a successful parse, so downstream sanitization is what gets tested.
  if (!densities.empty() &&
      RP_FAULT_FIRES(FaultSite::kDensityLoadNaN)) {
    if (FaultInjector* inj = GlobalFaultInjector()) {
      const int n = static_cast<int>(densities.size());
      for (int i : inj->PickIndices(n, std::max(1, n / 8))) {
        densities[i] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  if (!densities.empty() &&
      RP_FAULT_FIRES(FaultSite::kDensityLoadShortRead)) {
    const size_t keep = densities.size() - std::max<size_t>(
        1, densities.size() / 4);
    densities.resize(keep);
  }
  return densities;
}

Status SavePartitionCsv(const std::vector<int>& assignment,
                        const std::string& path, const RetryOptions& retry) {
  std::ostringstream out;
  out << "segment_id,partition_id\n";
  for (size_t i = 0; i < assignment.size(); ++i) {
    out << i << "," << assignment[i] << "\n";
  }
  return WriteArtifact(path, kPartitionFormat, kNetworkIoVersion, out.str(),
                       retry);
}

Result<std::vector<int>> LoadPartitionCsv(const std::string& path,
                                          int num_segments,
                                          const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = kPartitionFormat;
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));
  std::istringstream in(payload);
  std::vector<int> assignment(num_segments, -1);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    if (first && StartsWith(t, "segment_id")) {
      first = false;
      continue;
    }
    first = false;
    auto parts = Split(t, ',');
    if (parts.size() != 2) {
      return Status::IOError("malformed partition line: " + line);
    }
    RP_ASSIGN_OR_RETURN(int64_t id, ParseInt(parts[0]));
    RP_ASSIGN_OR_RETURN(int64_t label, ParseInt(parts[1]));
    if (id < 0 || id >= num_segments) {
      return Status::OutOfRange(
          StrPrintf("segment id %lld outside [0,%d)",
                    static_cast<long long>(id), num_segments));
    }
    assignment[id] = static_cast<int>(label);
  }
  for (int i = 0; i < num_segments; ++i) {
    if (assignment[i] < 0) {
      return Status::InvalidArgument(
          StrPrintf("segment %d has no partition assignment", i));
    }
  }
  return assignment;
}

}  // namespace roadpart
