#ifndef ROADPART_NETWORK_ROAD_NETWORK_H_
#define ROADPART_NETWORK_ROAD_NETWORK_H_

#include <vector>

#include "common/status.h"
#include "network/geometry.h"

namespace roadpart {

/// Intersection point (Definition 1's iota).
struct Intersection {
  Point position;
};

/// Directed road segment (Definition 1's r_i). Two-way roads are modelled as
/// two opposite segments sharing both endpoints, exactly as Section 2.1
/// prescribes.
struct RoadSegment {
  int from = 0;         // tail intersection id
  int to = 0;           // head intersection id
  double length = 0.0;  // metres
  double density = 0.0; // vehicles per metre (r_i.d)
};

/// The real urban road network N = (I, R) of Definition 1: intersections as
/// nodes connected by directed road segments carrying traffic densities.
class RoadNetwork {
 public:
  /// Validates endpoints and lengths; computes incidence lists.
  static Result<RoadNetwork> Create(std::vector<Intersection> intersections,
                                    std::vector<RoadSegment> segments);

  int num_intersections() const {
    return static_cast<int>(intersections_.size());
  }
  int num_segments() const { return static_cast<int>(segments_.size()); }

  const Intersection& intersection(int id) const { return intersections_[id]; }
  const RoadSegment& segment(int id) const { return segments_[id]; }
  const std::vector<RoadSegment>& segments() const { return segments_; }
  const std::vector<Intersection>& intersections() const {
    return intersections_;
  }

  /// Segment ids incident to an intersection (as tail or head).
  const std::vector<int>& SegmentsAt(int intersection_id) const {
    return incident_[intersection_id];
  }

  /// Segment ids leaving an intersection (tail == intersection).
  const std::vector<int>& SegmentsFrom(int intersection_id) const {
    return outgoing_[intersection_id];
  }

  /// Overwrites all segment densities; size must equal num_segments().
  Status SetDensities(const std::vector<double>& densities);

  /// Snapshot of current per-segment densities (the road-graph features).
  std::vector<double> Densities() const;

  double density(int segment_id) const { return segments_[segment_id].density; }
  void set_density(int segment_id, double d) { segments_[segment_id].density = d; }

  /// Bounding box over intersection positions.
  BoundingBox Bounds() const;

  /// Total directed length in metres.
  double TotalLengthMetres() const;

 private:
  std::vector<Intersection> intersections_;
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<int>> incident_;  // per intersection
  std::vector<std::vector<int>> outgoing_;  // per intersection
};

}  // namespace roadpart

#endif  // ROADPART_NETWORK_ROAD_NETWORK_H_
