#include "network/edge_list_io.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/durable_io.h"
#include "common/string_util.h"
#include "network/geometry.h"

namespace roadpart {

namespace {

constexpr char kNodesFormat[] = "edge-list-nodes";
constexpr char kEdgesFormat[] = "edge-list-edges";
constexpr int kEdgeListVersion = 1;

// Reads non-empty, non-comment lines; skips an optional non-numeric header.
// Files we wrote carry the artifact envelope and are checksum-verified;
// foreign CSVs (real datasets) pass through unverified.
Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, std::string_view expected_format,
    size_t min_fields, const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = std::string(expected_format);
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));
  std::istringstream in(payload);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    auto fields = Split(t, ',');
    if (first) {
      first = false;
      // Header detection: the first field of a header is not a number.
      if (!ParseInt(fields[0]).ok() && !ParseDouble(fields[0]).ok()) continue;
    }
    if (fields.size() < min_fields) {
      return Status::IOError(
          StrPrintf("%s: expected >= %zu fields, got %zu in '%s'",
                    path.c_str(), min_fields, fields.size(), line.c_str()));
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

Result<RoadNetwork> LoadEdgeListNetwork(const std::string& nodes_csv_path,
                                        const std::string& edges_csv_path,
                                        const RetryOptions& retry) {
  RP_ASSIGN_OR_RETURN(auto node_rows,
                      ReadCsv(nodes_csv_path, kNodesFormat, 3, retry));
  RP_ASSIGN_OR_RETURN(auto edge_rows,
                      ReadCsv(edges_csv_path, kEdgesFormat, 2, retry));

  std::map<int64_t, int> id_map;
  std::vector<Intersection> intersections;
  intersections.reserve(node_rows.size());
  for (const auto& row : node_rows) {
    RP_ASSIGN_OR_RETURN(int64_t id, ParseInt(row[0]));
    RP_ASSIGN_OR_RETURN(double x, ParseDouble(row[1]));
    RP_ASSIGN_OR_RETURN(double y, ParseDouble(row[2]));
    if (!id_map.emplace(id, static_cast<int>(intersections.size())).second) {
      return Status::InvalidArgument(
          StrPrintf("duplicate node id %lld", static_cast<long long>(id)));
    }
    intersections.push_back({Point{x, y}});
  }

  std::vector<RoadSegment> segments;
  segments.reserve(edge_rows.size() * 2);
  for (const auto& row : edge_rows) {
    RP_ASSIGN_OR_RETURN(int64_t from_id, ParseInt(row[0]));
    RP_ASSIGN_OR_RETURN(int64_t to_id, ParseInt(row[1]));
    auto from_it = id_map.find(from_id);
    auto to_it = id_map.find(to_id);
    if (from_it == id_map.end() || to_it == id_map.end()) {
      return Status::InvalidArgument(
          StrPrintf("edge references unknown node (%lld,%lld)",
                    static_cast<long long>(from_id),
                    static_cast<long long>(to_id)));
    }
    int from = from_it->second;
    int to = to_it->second;
    double length = Distance(intersections[from].position,
                             intersections[to].position);
    if (row.size() >= 3 && !Trim(row[2]).empty()) {
      RP_ASSIGN_OR_RETURN(length, ParseDouble(row[2]));
    }
    if (length <= 0.0) length = 1.0;  // degenerate geometry
    int64_t oneway = 0;
    if (row.size() >= 4 && !Trim(row[3]).empty()) {
      RP_ASSIGN_OR_RETURN(oneway, ParseInt(row[3]));
    }
    double density = 0.0;
    if (row.size() >= 5 && !Trim(row[4]).empty()) {
      RP_ASSIGN_OR_RETURN(density, ParseDouble(row[4]));
    }
    segments.push_back({from, to, length, density});
    if (oneway == 0) segments.push_back({to, from, length, density});
  }
  return RoadNetwork::Create(std::move(intersections), std::move(segments));
}

Status SaveEdgeListNetwork(const RoadNetwork& network,
                           const std::string& nodes_csv_path,
                           const std::string& edges_csv_path,
                           const RetryOptions& retry) {
  {
    std::ostringstream out;
    out << "node_id,x,y\n";
    for (int i = 0; i < network.num_intersections(); ++i) {
      const Point& p = network.intersection(i).position;
      out << StrPrintf("%d,%.6f,%.6f\n", i, p.x, p.y);
    }
    RP_RETURN_IF_ERROR(WriteArtifact(nodes_csv_path, kNodesFormat,
                                     kEdgeListVersion, out.str(), retry));
  }

  // Fold two-way pairs: a reverse twin (same endpoints, opposite direction)
  // with an unused index turns a row into oneway=0.
  std::set<std::pair<int, int>> remaining;
  for (int i = 0; i < network.num_segments(); ++i) {
    const RoadSegment& s = network.segment(i);
    remaining.insert({s.from, s.to});
  }
  std::ostringstream out;
  out << "from_id,to_id,length,oneway,density\n";
  for (int i = 0; i < network.num_segments(); ++i) {
    const RoadSegment& s = network.segment(i);
    if (!remaining.count({s.from, s.to})) continue;  // folded already
    remaining.erase({s.from, s.to});
    bool two_way = remaining.count({s.to, s.from}) > 0;
    if (two_way) remaining.erase({s.to, s.from});
    out << StrPrintf("%d,%d,%.6f,%d,%.9f\n", s.from, s.to, s.length,
                     two_way ? 0 : 1, s.density);
  }
  return WriteArtifact(edges_csv_path, kEdgesFormat, kEdgeListVersion,
                       out.str(), retry);
}

}  // namespace roadpart
