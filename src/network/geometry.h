#ifndef ROADPART_NETWORK_GEOMETRY_H_
#define ROADPART_NETWORK_GEOMETRY_H_

namespace roadpart {

/// Planar point; coordinates are metres in a local projection.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance in metres.
double Distance(const Point& a, const Point& b);

/// Axis-aligned bounding box.
struct BoundingBox {
  Point min;
  Point max;

  double WidthMetres() const { return max.x - min.x; }
  double HeightMetres() const { return max.y - min.y; }
  double AreaSqMetres() const { return WidthMetres() * HeightMetres(); }
  /// Area in square miles (1 sq mile = 2,589,988.11 m^2) — the unit Table 1
  /// reports.
  double AreaSqMiles() const { return AreaSqMetres() / 2589988.110336; }
};

/// Linear interpolation along the segment a->b at fraction t in [0,1].
Point Lerp(const Point& a, const Point& b, double t);

}  // namespace roadpart

#endif  // ROADPART_NETWORK_GEOMETRY_H_
