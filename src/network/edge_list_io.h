#ifndef ROADPART_NETWORK_EDGE_LIST_IO_H_
#define ROADPART_NETWORK_EDGE_LIST_IO_H_

#include <string>

#include "common/durable_io.h"
#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Loads a road network from the common two-CSV layout real road datasets
/// ship in (e.g. OpenStreetMap extracts post-processed with osmnx):
///
///   nodes.csv:  node_id,x,y                    (header optional)
///   edges.csv:  from_id,to_id[,length[,oneway[,density]]]
///
/// - `node_id`s may be arbitrary integers; they are remapped densely.
/// - `length` defaults to the Euclidean endpoint distance (metres).
/// - `oneway` is 0/1 (default 0): 0 adds both directed segments.
/// - `density` (vehicles/metre) defaults to 0 and applies to both
///   directions of a two-way road.
Result<RoadNetwork> LoadEdgeListNetwork(const std::string& nodes_csv_path,
                                        const std::string& edges_csv_path,
                                        const RetryOptions& retry = {});

/// Writes the matching nodes/edges CSV pair. Two-way roads (segment pairs
/// sharing both endpoints) are folded into a single `oneway=0` row with the
/// forward direction's density. Both files are written atomically inside
/// checksummed artifact envelopes (the '#'-prefixed envelope lines read as
/// CSV comments to foreign tools).
Status SaveEdgeListNetwork(const RoadNetwork& network,
                           const std::string& nodes_csv_path,
                           const std::string& edges_csv_path,
                           const RetryOptions& retry = {});

}  // namespace roadpart

#endif  // ROADPART_NETWORK_EDGE_LIST_IO_H_
