#include "network/road_network.h"

#include <algorithm>

#include "common/string_util.h"

namespace roadpart {

Result<RoadNetwork> RoadNetwork::Create(std::vector<Intersection> intersections,
                                        std::vector<RoadSegment> segments) {
  const int ni = static_cast<int>(intersections.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    const RoadSegment& s = segments[i];
    if (s.from < 0 || s.from >= ni || s.to < 0 || s.to >= ni) {
      return Status::OutOfRange(StrPrintf(
          "segment %zu endpoints (%d,%d) outside [0,%d)", i, s.from, s.to, ni));
    }
    if (s.from == s.to) {
      return Status::InvalidArgument(
          StrPrintf("segment %zu is a self-loop at intersection %d", i, s.from));
    }
    if (!(s.length > 0.0)) {
      return Status::InvalidArgument(
          StrPrintf("segment %zu has non-positive length", i));
    }
    if (s.density < 0.0) {
      return Status::InvalidArgument(
          StrPrintf("segment %zu has negative density", i));
    }
  }

  RoadNetwork net;
  net.intersections_ = std::move(intersections);
  net.segments_ = std::move(segments);
  net.incident_.assign(ni, {});
  net.outgoing_.assign(ni, {});
  for (size_t i = 0; i < net.segments_.size(); ++i) {
    const RoadSegment& s = net.segments_[i];
    net.incident_[s.from].push_back(static_cast<int>(i));
    net.incident_[s.to].push_back(static_cast<int>(i));
    net.outgoing_[s.from].push_back(static_cast<int>(i));
  }
  return net;
}

Status RoadNetwork::SetDensities(const std::vector<double>& densities) {
  if (densities.size() != segments_.size()) {
    return Status::InvalidArgument(
        StrPrintf("expected %zu densities, got %zu", segments_.size(),
                  densities.size()));
  }
  for (size_t i = 0; i < densities.size(); ++i) {
    if (densities[i] < 0.0) {
      return Status::InvalidArgument(
          StrPrintf("density %zu is negative", i));
    }
  }
  for (size_t i = 0; i < densities.size(); ++i) {
    segments_[i].density = densities[i];
  }
  return Status::OK();
}

std::vector<double> RoadNetwork::Densities() const {
  std::vector<double> d(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) d[i] = segments_[i].density;
  return d;
}

BoundingBox RoadNetwork::Bounds() const {
  BoundingBox box;
  if (intersections_.empty()) return box;
  box.min = box.max = intersections_[0].position;
  for (const Intersection& it : intersections_) {
    box.min.x = std::min(box.min.x, it.position.x);
    box.min.y = std::min(box.min.y, it.position.y);
    box.max.x = std::max(box.max.x, it.position.x);
    box.max.y = std::max(box.max.y, it.position.y);
  }
  return box;
}

double RoadNetwork::TotalLengthMetres() const {
  double total = 0.0;
  for (const RoadSegment& s : segments_) total += s.length;
  return total;
}

}  // namespace roadpart
