#include "network/geometry.h"

#include <cmath>

namespace roadpart {

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace roadpart
