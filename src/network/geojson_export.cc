#include "network/geojson_export.h"

#include <sstream>

#include "common/durable_io.h"
#include "common/string_util.h"

namespace roadpart {

Result<std::string> GeoJsonString(const RoadNetwork& network,
                                  const GeoJsonOptions& options) {
  if (!options.partition.empty() &&
      static_cast<int>(options.partition.size()) != network.num_segments()) {
    return Status::InvalidArgument(
        StrPrintf("partition has %zu entries for %d segments",
                  options.partition.size(), network.num_segments()));
  }
  std::ostringstream out;
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (int i = 0; i < network.num_segments(); ++i) {
    const RoadSegment& s = network.segment(i);
    const Point& a = network.intersection(s.from).position;
    const Point& b = network.intersection(s.to).position;
    if (i > 0) out << ",";
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        << StrPrintf("\"coordinates\":[[%.6f,%.6f],[%.6f,%.6f]]}",
                     a.x * options.coordinate_scale,
                     a.y * options.coordinate_scale,
                     b.x * options.coordinate_scale,
                     b.y * options.coordinate_scale)
        << ",\"properties\":{" << StrPrintf("\"id\":%d", i);
    if (options.include_density) {
      out << StrPrintf(",\"density\":%.9f", s.density);
    }
    if (!options.partition.empty()) {
      out << StrPrintf(",\"partition\":%d", options.partition[i]);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

Status ExportGeoJson(const RoadNetwork& network, const GeoJsonOptions& options,
                     const std::string& path, const RetryOptions& retry) {
  RP_ASSIGN_OR_RETURN(std::string json, GeoJsonString(network, options));
  json.push_back('\n');
  // Atomic write only — no artifact envelope. The output must stay plain
  // valid JSON so map viewers accept it; atomicity alone already guarantees
  // a crash leaves either the old file or none.
  return AtomicWriteFile(path, json, retry);
}

}  // namespace roadpart
