#ifndef ROADPART_NETWORK_NETWORK_IO_H_
#define ROADPART_NETWORK_NETWORK_IO_H_

#include <string>
#include <vector>

#include "common/durable_io.h"
#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Serializes a road network to a simple line-oriented text format:
///   # roadnet v1
///   I <num_intersections>
///   <x> <y>                     (one line per intersection, id = line order)
///   S <num_segments>
///   <from> <to> <length> <density>
/// All writers in this header go through common/durable_io: atomic
/// temp-write + rename inside a checksummed artifact envelope, with optional
/// bounded transient-fault retry.
Status SaveRoadNetwork(const RoadNetwork& network, const std::string& path,
                       const RetryOptions& retry = {});

/// Loads a network saved by SaveRoadNetwork. Enveloped files are
/// checksum-verified (torn/corrupt -> kCorruption); envelope-less files are
/// accepted for hand-authored inputs.
Result<RoadNetwork> LoadRoadNetwork(const std::string& path,
                                    const RetryOptions& retry = {});

/// Writes one density per line.
Status SaveDensities(const std::vector<double>& densities,
                     const std::string& path, const RetryOptions& retry = {});

/// Reads densities written by SaveDensities.
Result<std::vector<double>> LoadDensities(const std::string& path,
                                          const RetryOptions& retry = {});

/// Writes "segment_id,partition_id" CSV with a header.
Status SavePartitionCsv(const std::vector<int>& assignment,
                        const std::string& path,
                        const RetryOptions& retry = {});

/// Reads a partition CSV written by SavePartitionCsv. Every segment in
/// [0, num_segments) must be assigned exactly once; ids outside the range
/// are kOutOfRange and missing ids are kInvalidArgument.
Result<std::vector<int>> LoadPartitionCsv(const std::string& path,
                                          int num_segments,
                                          const RetryOptions& retry = {});

}  // namespace roadpart

#endif  // ROADPART_NETWORK_NETWORK_IO_H_
