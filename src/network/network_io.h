#ifndef ROADPART_NETWORK_NETWORK_IO_H_
#define ROADPART_NETWORK_NETWORK_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Serializes a road network to a simple line-oriented text format:
///   # roadnet v1
///   I <num_intersections>
///   <x> <y>                     (one line per intersection, id = line order)
///   S <num_segments>
///   <from> <to> <length> <density>
Status SaveRoadNetwork(const RoadNetwork& network, const std::string& path);

/// Loads a network saved by SaveRoadNetwork.
Result<RoadNetwork> LoadRoadNetwork(const std::string& path);

/// Writes one density per line.
Status SaveDensities(const std::vector<double>& densities,
                     const std::string& path);

/// Reads densities written by SaveDensities.
Result<std::vector<double>> LoadDensities(const std::string& path);

/// Writes "segment_id,partition_id" CSV with a header.
Status SavePartitionCsv(const std::vector<int>& assignment,
                        const std::string& path);

}  // namespace roadpart

#endif  // ROADPART_NETWORK_NETWORK_IO_H_
