#ifndef ROADPART_NETWORK_GEOJSON_EXPORT_H_
#define ROADPART_NETWORK_GEOJSON_EXPORT_H_

#include <string>
#include <vector>

#include "common/durable_io.h"
#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Options for GeoJSON export.
struct GeoJsonOptions {
  /// Per-segment partition ids (optional; empty = no partition property).
  std::vector<int> partition;
  /// Include the current segment densities as a property.
  bool include_density = true;
  /// Scale factor from local metres to output coordinates (GeoJSON viewers
  /// accept plain planar coordinates; 1.0 keeps metres).
  double coordinate_scale = 1.0;
};

/// Serializes the network (and optionally a partitioning) as a GeoJSON
/// FeatureCollection of LineString features — one per road segment, with
/// `id`, `density` and `partition` properties — so results drop straight
/// into common map viewers for visual inspection of the partition maps the
/// paper shows. Written atomically (crash leaves the old file or none); no
/// artifact envelope so the output stays plain valid JSON for viewers.
Status ExportGeoJson(const RoadNetwork& network, const GeoJsonOptions& options,
                     const std::string& path, const RetryOptions& retry = {});

/// In-memory variant (exposed for tests).
Result<std::string> GeoJsonString(const RoadNetwork& network,
                                  const GeoJsonOptions& options);

}  // namespace roadpart

#endif  // ROADPART_NETWORK_GEOJSON_EXPORT_H_
