#include "traffic/microsim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "traffic/router.h"

namespace roadpart {

namespace {

struct VehicleState {
  Route route;
  int leg = 0;               // index into route.segment_ids
  double offset_metres = 0.0;
  double departure = 0.0;
  bool departed = false;
  bool finished = false;
};

}  // namespace

Result<SimulationResult> RunMicrosim(const RoadNetwork& network,
                                     const std::vector<Trip>& trips,
                                     const MicrosimOptions& options) {
  if (options.step_seconds <= 0.0 || options.total_seconds <= 0.0 ||
      options.record_every_seconds <= 0.0) {
    return Status::InvalidArgument("time parameters must be positive");
  }
  if (options.jam_density_vpm <= 0.0 || options.free_speed_mps <= 0.0) {
    return Status::InvalidArgument("traffic parameters must be positive");
  }

  Router router(network);
  std::vector<VehicleState> vehicles;
  vehicles.reserve(trips.size());
  int unroutable = 0;
  for (const Trip& trip : trips) {
    auto route = router.ShortestPath(trip.origin, trip.destination);
    if (!route.ok() || route->segment_ids.empty()) {
      ++unroutable;
      continue;
    }
    VehicleState v;
    v.route = std::move(route).value();
    v.departure = trip.departure_seconds;
    vehicles.push_back(std::move(v));
  }
  if (unroutable > 0) {
    RP_LOG(Debug) << unroutable << " trips had no route and were dropped";
  }

  const int ns = network.num_segments();
  std::vector<int> occupancy(ns, 0);  // vehicles currently on each segment
  std::vector<double> seg_length(ns);
  for (int i = 0; i < ns; ++i) seg_length[i] = network.segment(i).length;

  SimulationResult result;
  double next_record = options.record_every_seconds;

  auto record_snapshot = [&]() {
    std::vector<double> dens(ns, 0.0);
    for (int i = 0; i < ns; ++i) {
      dens[i] = occupancy[i] / seg_length[i];
    }
    result.densities.push_back(std::move(dens));
    if (options.record_positions) {
      std::vector<Point> pos;
      for (const VehicleState& v : vehicles) {
        if (!v.departed || v.finished) continue;
        const RoadSegment& s = network.segment(v.route.segment_ids[v.leg]);
        double t = std::clamp(v.offset_metres / s.length, 0.0, 1.0);
        pos.push_back(Lerp(network.intersection(s.from).position,
                           network.intersection(s.to).position, t));
      }
      result.positions.push_back(std::move(pos));
    }
  };

  for (double now = 0.0; now < options.total_seconds;
       now += options.step_seconds) {
    // Departures.
    for (VehicleState& v : vehicles) {
      if (!v.departed && !v.finished && v.departure <= now) {
        v.departed = true;
        v.leg = 0;
        v.offset_metres = 0.0;
        occupancy[v.route.segment_ids[0]]++;
      }
    }

    // Movement: speed from the density at the start of the step.
    for (VehicleState& v : vehicles) {
      if (!v.departed || v.finished) continue;
      double budget = options.step_seconds;
      while (budget > 0.0 && !v.finished) {
        int seg_id = v.route.segment_ids[v.leg];
        double k = occupancy[seg_id] / seg_length[seg_id];
        double frac = std::max(options.min_speed_fraction,
                               1.0 - k / options.jam_density_vpm);
        double speed = options.free_speed_mps * frac;
        double remaining = seg_length[seg_id] - v.offset_metres;
        double step_dist = speed * budget;
        if (step_dist < remaining) {
          v.offset_metres += step_dist;
          budget = 0.0;
        } else {
          budget -= remaining / speed;
          occupancy[seg_id]--;
          ++v.leg;
          if (v.leg >= static_cast<int>(v.route.segment_ids.size())) {
            v.finished = true;
            ++result.completed_trips;
          } else {
            occupancy[v.route.segment_ids[v.leg]]++;
            v.offset_metres = 0.0;
          }
        }
      }
    }

    if (now + options.step_seconds >= next_record) {
      record_snapshot();
      next_record += options.record_every_seconds;
    }
  }

  if (result.densities.empty()) record_snapshot();
  return result;
}

}  // namespace roadpart
