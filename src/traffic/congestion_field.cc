#include "traffic/congestion_field.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace roadpart {

CongestionField::CongestionField(const RoadNetwork& network,
                                 const CongestionFieldOptions& options)
    : network_(network), options_(options) {
  Rng rng(options.seed);
  BoundingBox box = network.Bounds();
  double diag = std::max(1.0, std::hypot(box.WidthMetres(), box.HeightMetres()));
  radius_ = std::max(1.0, options.hotspot_radius_fraction * diag);

  for (int h = 0; h < options.num_hotspots; ++h) {
    hotspots_.push_back({rng.NextDouble(box.min.x, box.max.x),
                         rng.NextDouble(box.min.y, box.max.y)});
    phases_.push_back(rng.NextDouble());
  }

  midpoints_.resize(network.num_segments());
  noise_.resize(network.num_segments());
  for (int i = 0; i < network.num_segments(); ++i) {
    const RoadSegment& s = network.segment(i);
    midpoints_[i] = Lerp(network.intersection(s.from).position,
                         network.intersection(s.to).position, 0.5);
    // Multiplicative noise centred on 1 with the requested spread, floored
    // so densities stay positive.
    noise_[i] = std::max(
        0.05, 1.0 + options.noise_fraction * rng.NextGaussian());
  }
}

std::vector<double> CongestionField::DensitiesAt(double time01) const {
  std::vector<double> densities(network_.num_segments(), 0.0);
  std::vector<double> amplitude(hotspots_.size(), options_.hotspot_peak_vpm);
  if (time01 >= 0.0) {
    for (size_t h = 0; h < hotspots_.size(); ++h) {
      // Raised cosine centred on the hotspot's phase: amplitude in [0, peak].
      double delta = time01 - phases_[h];
      delta -= std::round(delta);  // wrap to [-0.5, 0.5]
      amplitude[h] =
          options_.hotspot_peak_vpm * 0.5 * (1.0 + std::cos(2.0 * M_PI * delta));
    }
  }
  if (options_.voronoi_tiling && !hotspots_.empty()) {
    // Each hotspot carries a distinct congestion level; a segment takes the
    // level of its nearest centre (modulated by the centre's amplitude).
    const size_t nh = hotspots_.size();
    for (int i = 0; i < network_.num_segments(); ++i) {
      size_t nearest = 0;
      double best = Distance(midpoints_[i], hotspots_[0]);
      for (size_t h = 1; h < nh; ++h) {
        double dist = Distance(midpoints_[i], hotspots_[h]);
        if (dist < best) {
          best = dist;
          nearest = h;
        }
      }
      double level_frac =
          nh > 1 ? static_cast<double>(nearest) / (nh - 1) : 1.0;
      double d = options_.base_density_vpm +
                 level_frac * amplitude[nearest];
      densities[i] = std::max(0.0, d * noise_[i]);
    }
    return densities;
  }
  const double p = options_.falloff_exponent;
  for (int i = 0; i < network_.num_segments(); ++i) {
    double d = options_.base_density_vpm;
    for (size_t h = 0; h < hotspots_.size(); ++h) {
      double dist = Distance(midpoints_[i], hotspots_[h]);
      d += amplitude[h] * std::exp(-0.5 * std::pow(dist / radius_, p));
    }
    densities[i] = std::max(0.0, d * noise_[i]);
  }
  return densities;
}

std::vector<int> CongestionField::DominantHotspot() const {
  std::vector<int> dominant(network_.num_segments(), -1);
  if (options_.voronoi_tiling && !hotspots_.empty()) {
    for (int i = 0; i < network_.num_segments(); ++i) {
      size_t nearest = 0;
      double best = Distance(midpoints_[i], hotspots_[0]);
      for (size_t h = 1; h < hotspots_.size(); ++h) {
        double dist = Distance(midpoints_[i], hotspots_[h]);
        if (dist < best) {
          best = dist;
          nearest = h;
        }
      }
      dominant[i] = static_cast<int>(nearest);
    }
    return dominant;
  }
  for (int i = 0; i < network_.num_segments(); ++i) {
    double best = options_.base_density_vpm;
    for (size_t h = 0; h < hotspots_.size(); ++h) {
      double dist = Distance(midpoints_[i], hotspots_[h]);
      double contrib =
          options_.hotspot_peak_vpm *
          std::exp(-0.5 * std::pow(dist / radius_, options_.falloff_exponent));
      if (contrib > best) {
        best = contrib;
        dominant[i] = static_cast<int>(h);
      }
    }
  }
  return dominant;
}

}  // namespace roadpart
