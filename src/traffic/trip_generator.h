#ifndef ROADPART_TRAFFIC_TRIP_GENERATOR_H_
#define ROADPART_TRAFFIC_TRIP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "network/geometry.h"
#include "network/road_network.h"

namespace roadpart {

/// One vehicle's travel demand.
struct Trip {
  int origin = 0;            ///< intersection id
  int destination = 0;       ///< intersection id
  double departure_seconds = 0.0;
};

/// Options for the MNTG-substitute demand generator. Destinations are biased
/// towards a set of attraction hotspots (CBD, stations, …) so the resulting
/// congestion is spatially structured, as in real urban traffic.
struct TripGeneratorOptions {
  int num_vehicles = 1000;
  double horizon_seconds = 3600.0;  ///< departures uniform in [0, horizon)
  int num_hotspots = 3;
  double hotspot_bias = 0.7;  ///< probability a destination is hotspot-drawn
  double hotspot_radius_fraction = 0.15;  ///< of the network diagonal
  /// Resample origin/destination pairs until a directed route exists (up to
  /// `max_route_attempts` tries per vehicle). Synthetic one-way assignments
  /// can leave intersection pairs unreachable; real travel demand only
  /// exists between reachable places, so this is on by default.
  bool require_routable = true;
  int max_route_attempts = 25;
  uint64_t seed = 1;
};

/// Generated demand plus the hotspot centres used (for inspection/plots).
struct TripSet {
  std::vector<Trip> trips;
  std::vector<Point> hotspots;
};

/// Generates random trips over the network.
Result<TripSet> GenerateTrips(const RoadNetwork& network,
                              const TripGeneratorOptions& options);

}  // namespace roadpart

#endif  // ROADPART_TRAFFIC_TRIP_GENERATOR_H_
