#ifndef ROADPART_TRAFFIC_MICROSIM_H_
#define ROADPART_TRAFFIC_MICROSIM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "network/geometry.h"
#include "network/road_network.h"
#include "traffic/trip_generator.h"

namespace roadpart {

/// Options for the discrete-time traffic micro-simulator. Speeds follow the
/// Greenshields relation v = v_free * max(v_min_frac, 1 - k / k_jam) with k
/// the instantaneous density of the occupied segment, so congestion feeds
/// back into travel times (queues grow behind hotspots).
struct MicrosimOptions {
  double step_seconds = 2.0;
  double record_every_seconds = 120.0;  ///< paper's D1 used 2-minute intervals
  double total_seconds = 3600.0;
  double free_speed_mps = 13.9;       ///< ~50 km/h urban
  double jam_density_vpm = 0.15;      ///< vehicles per metre at standstill
  double min_speed_fraction = 0.05;   ///< crawl floor, keeps the sim live
  bool record_positions = false;      ///< also emit (x,y) vehicle snapshots
};

/// Simulation output: one density vector per recorded timestamp (and
/// optionally the raw vehicle positions, for exercising DensityMapper).
struct SimulationResult {
  /// densities[t][segment] in vehicles/metre.
  std::vector<std::vector<double>> densities;
  /// positions[t] = active-vehicle planar positions (empty unless requested).
  std::vector<std::vector<Point>> positions;
  /// Trips that finished within the horizon.
  int completed_trips = 0;
};

/// Runs the micro-simulation of `trips` over `network`. Routes are computed
/// once at departure with the given router (shortest by length).
Result<SimulationResult> RunMicrosim(const RoadNetwork& network,
                                     const std::vector<Trip>& trips,
                                     const MicrosimOptions& options);

}  // namespace roadpart

#endif  // ROADPART_TRAFFIC_MICROSIM_H_
