#include "traffic/trip_generator.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "traffic/router.h"

namespace roadpart {

Result<TripSet> GenerateTrips(const RoadNetwork& network,
                              const TripGeneratorOptions& options) {
  if (network.num_intersections() < 2) {
    return Status::InvalidArgument("network too small for trips");
  }
  if (options.num_vehicles < 0) {
    return Status::InvalidArgument("negative vehicle count");
  }
  if (options.hotspot_bias < 0.0 || options.hotspot_bias > 1.0) {
    return Status::InvalidArgument("hotspot_bias must be in [0,1]");
  }

  Rng rng(options.seed);
  const int ni = network.num_intersections();
  BoundingBox box = network.Bounds();
  const double diag = std::hypot(box.WidthMetres(), box.HeightMetres());
  const double radius = std::max(1.0, options.hotspot_radius_fraction * diag);

  TripSet out;
  for (int h = 0; h < options.num_hotspots; ++h) {
    out.hotspots.push_back({rng.NextDouble(box.min.x, box.max.x),
                            rng.NextDouble(box.min.y, box.max.y)});
  }

  // Precompute, per hotspot, sampling weights over intersections that decay
  // with distance from the hotspot.
  std::vector<std::vector<double>> hotspot_weights(out.hotspots.size());
  for (size_t h = 0; h < out.hotspots.size(); ++h) {
    hotspot_weights[h].resize(ni);
    for (int i = 0; i < ni; ++i) {
      double d = Distance(network.intersection(i).position, out.hotspots[h]);
      hotspot_weights[h][i] = std::exp(-0.5 * (d / radius) * (d / radius));
    }
  }

  Router router(network);
  int unroutable_kept = 0;
  out.trips.reserve(options.num_vehicles);
  for (int v = 0; v < options.num_vehicles; ++v) {
    Trip trip;
    const int attempts =
        options.require_routable ? std::max(1, options.max_route_attempts) : 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      trip.origin = static_cast<int>(rng.NextBounded(ni));
      if (!out.hotspots.empty() && rng.NextDouble() < options.hotspot_bias) {
        size_t h = rng.NextBounded(out.hotspots.size());
        trip.destination =
            static_cast<int>(rng.NextWeighted(hotspot_weights[h]));
      } else {
        trip.destination = static_cast<int>(rng.NextBounded(ni));
      }
      if (trip.destination == trip.origin) {
        trip.destination = (trip.destination + 1) % ni;
      }
      if (!options.require_routable ||
          router.ShortestPath(trip.origin, trip.destination).ok()) {
        break;
      }
      if (attempt + 1 == attempts) ++unroutable_kept;
    }
    trip.departure_seconds = rng.NextDouble(0.0, options.horizon_seconds);
    out.trips.push_back(trip);
  }
  if (unroutable_kept > 0) {
    RP_LOG(Debug) << unroutable_kept
                  << " trips stayed unroutable after resampling";
  }
  return out;
}

}  // namespace roadpart
