#include "traffic/router.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/string_util.h"

namespace roadpart {

Result<Route> Router::ShortestPath(int from_intersection,
                                   int to_intersection) const {
  const int ni = network_.num_intersections();
  if (from_intersection < 0 || from_intersection >= ni || to_intersection < 0 ||
      to_intersection >= ni) {
    return Status::OutOfRange("intersection id out of range");
  }
  if (from_intersection == to_intersection) return Route{};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(ni, kInf);
  std::vector<int> via_segment(ni, -1);  // segment used to reach node
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[from_intersection] = 0.0;
  heap.push({0.0, from_intersection});

  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == to_intersection) break;
    for (int seg_id : network_.SegmentsFrom(u)) {
      const RoadSegment& s = network_.segment(seg_id);
      double nd = d + s.length;
      if (nd < dist[s.to]) {
        dist[s.to] = nd;
        via_segment[s.to] = seg_id;
        heap.push({nd, s.to});
      }
    }
  }

  if (via_segment[to_intersection] == -1) {
    return Status::NotFound(
        StrPrintf("no route from %d to %d", from_intersection,
                  to_intersection));
  }

  Route route;
  route.length_metres = dist[to_intersection];
  int at = to_intersection;
  while (at != from_intersection) {
    int seg_id = via_segment[at];
    route.segment_ids.push_back(seg_id);
    at = network_.segment(seg_id).from;
  }
  std::reverse(route.segment_ids.begin(), route.segment_ids.end());
  return route;
}

}  // namespace roadpart
