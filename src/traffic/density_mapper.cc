#include "traffic/density_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace roadpart {

namespace {

// Distance from point p to the closed segment a-b.
double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  double px = a.x + t * dx;
  double py = a.y + t * dy;
  return std::hypot(p.x - px, p.y - py);
}

}  // namespace

DensityMapper::DensityMapper(const RoadNetwork& network) : network_(network) {
  BoundingBox box = network.Bounds();
  origin_ = box.min;
  const int ns = network.num_segments();
  // Aim for a handful of segments per cell.
  double area = std::max(box.AreaSqMetres(), 1.0);
  cell_ = std::max(1.0, std::sqrt(area / std::max(ns, 1)) * 2.0);
  gx_ = std::max(1, static_cast<int>(box.WidthMetres() / cell_) + 1);
  gy_ = std::max(1, static_cast<int>(box.HeightMetres() / cell_) + 1);
  buckets_.assign(static_cast<size_t>(gx_) * gy_, {});

  // Register each segment in every cell its bounding box overlaps (segments
  // are short relative to cells, so this stays near O(1) cells per segment).
  for (int i = 0; i < ns; ++i) {
    const RoadSegment& s = network.segment(i);
    const Point& a = network.intersection(s.from).position;
    const Point& b = network.intersection(s.to).position;
    int x0 = std::clamp(static_cast<int>((std::min(a.x, b.x) - origin_.x) / cell_), 0, gx_ - 1);
    int x1 = std::clamp(static_cast<int>((std::max(a.x, b.x) - origin_.x) / cell_), 0, gx_ - 1);
    int y0 = std::clamp(static_cast<int>((std::min(a.y, b.y) - origin_.y) / cell_), 0, gy_ - 1);
    int y1 = std::clamp(static_cast<int>((std::max(a.y, b.y) - origin_.y) / cell_), 0, gy_ - 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        buckets_[static_cast<size_t>(y) * gx_ + x].push_back(i);
      }
    }
  }
}

double DensityMapper::SegmentDistance(int segment_id, const Point& p) const {
  const RoadSegment& s = network_.segment(segment_id);
  return PointSegmentDistance(p, network_.intersection(s.from).position,
                              network_.intersection(s.to).position);
}

int DensityMapper::NearestSegment(const Point& p) const {
  if (network_.num_segments() == 0) return -1;
  int cx = std::clamp(static_cast<int>((p.x - origin_.x) / cell_), 0, gx_ - 1);
  int cy = std::clamp(static_cast<int>((p.y - origin_.y) / cell_), 0, gy_ - 1);

  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(gx_, gy_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a hit exists and the ring's nearest possible distance exceeds it,
    // stop.
    if (best >= 0 && (ring - 1) * cell_ > best_dist) break;
    bool any_cell = false;
    for (int y = cy - ring; y <= cy + ring; ++y) {
      if (y < 0 || y >= gy_) continue;
      for (int x = cx - ring; x <= cx + ring; ++x) {
        if (x < 0 || x >= gx_) continue;
        // Only the ring boundary (interior already visited).
        if (ring > 0 && std::abs(x - cx) != ring && std::abs(y - cy) != ring) {
          continue;
        }
        any_cell = true;
        for (int seg : buckets_[static_cast<size_t>(y) * gx_ + x]) {
          double d = SegmentDistance(seg, p);
          if (d < best_dist || (d == best_dist && seg < best)) {
            best_dist = d;
            best = seg;
          }
        }
      }
    }
    if (!any_cell && ring > std::max(gx_, gy_)) break;
  }
  return best;
}

std::vector<double> DensityMapper::ComputeDensities(
    const std::vector<Point>& vehicle_positions) const {
  std::vector<double> densities(network_.num_segments(), 0.0);
  for (const Point& p : vehicle_positions) {
    int seg = NearestSegment(p);
    if (seg >= 0) densities[seg] += 1.0;
  }
  for (int i = 0; i < network_.num_segments(); ++i) {
    densities[i] /= network_.segment(i).length;
  }
  return densities;
}

}  // namespace roadpart
