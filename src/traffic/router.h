#ifndef ROADPART_TRAFFIC_ROUTER_H_
#define ROADPART_TRAFFIC_ROUTER_H_

#include <vector>

#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// A directed route through the network as a sequence of segment ids.
struct Route {
  std::vector<int> segment_ids;
  double length_metres = 0.0;
};

/// Shortest-path router over the directed segment graph (Dijkstra by
/// length). The referenced network must outlive the router.
class Router {
 public:
  explicit Router(const RoadNetwork& network) : network_(network) {}

  /// Shortest directed route between two intersections; NotFound when the
  /// destination is unreachable.
  Result<Route> ShortestPath(int from_intersection,
                             int to_intersection) const;

 private:
  const RoadNetwork& network_;
};

}  // namespace roadpart

#endif  // ROADPART_TRAFFIC_ROUTER_H_
