#ifndef ROADPART_TRAFFIC_CONGESTION_FIELD_H_
#define ROADPART_TRAFFIC_CONGESTION_FIELD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "network/geometry.h"
#include "network/road_network.h"

namespace roadpart {

/// Options for the synthetic congestion field.
struct CongestionFieldOptions {
  int num_hotspots = 4;
  double base_density_vpm = 0.01;   ///< ambient vehicles/metre
  double hotspot_peak_vpm = 0.12;   ///< extra density at a hotspot centre
  double hotspot_radius_fraction = 0.18;  ///< of the network diagonal
  double noise_fraction = 0.10;     ///< multiplicative lognormal-ish noise
  /// Radial falloff exponent p in exp(-0.5 (d/r)^p). p = 2 is a plain
  /// Gaussian; the default p = 4 (super-Gaussian) gives a flat congested
  /// plateau with a sharp edge, matching the jammed-core / free-periphery
  /// contrast of peak-hour microsimulation data (the paper's D1 input).
  double falloff_exponent = 4.0;
  /// When true, the field is a *tiling*: every segment takes the congestion
  /// level of its nearest hotspot centre (levels spread between base and
  /// base+peak), so distinct-density regions cover the whole network — the
  /// structure of city-wide rush-hour data (every area has *some* congestion
  /// level), as opposed to isolated hotspots over an empty background.
  bool voronoi_tiling = false;
  uint64_t seed = 1;
};

/// Fast, repeatable generator of spatially correlated congestion: a handful
/// of Gaussian hotspots (city centre, stations, …) over an ambient base.
/// Used where the full micro-simulation is unnecessary; it produces the same
/// kind of input the partitioner consumes (one density per segment) with
/// controllable spatial structure, so partitions exist to be found.
class CongestionField {
 public:
  CongestionField(const RoadNetwork& network,
                  const CongestionFieldOptions& options);

  /// Densities at a time-of-day phase `time01` in [0,1]: each hotspot's
  /// amplitude follows a raised-cosine peak with its own phase, emulating
  /// morning/evening waves. `time01 < 0` disables modulation (static field).
  std::vector<double> DensitiesAt(double time01) const;

  /// Static field (all hotspots at full amplitude).
  std::vector<double> Densities() const { return DensitiesAt(-1.0); }

  const std::vector<Point>& hotspots() const { return hotspots_; }

  /// Ground-truth hotspot id per segment (nearest dominant hotspot, or -1
  /// when the base density dominates) — used by recovery tests.
  std::vector<int> DominantHotspot() const;

 private:
  const RoadNetwork& network_;
  CongestionFieldOptions options_;
  std::vector<Point> hotspots_;
  std::vector<double> phases_;       // per-hotspot temporal phase
  std::vector<Point> midpoints_;     // per-segment geometric midpoint
  std::vector<double> noise_;        // per-segment multiplicative noise
  double radius_ = 1.0;
};

}  // namespace roadpart

#endif  // ROADPART_TRAFFIC_CONGESTION_FIELD_H_
