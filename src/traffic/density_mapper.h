#ifndef ROADPART_TRAFFIC_DENSITY_MAPPER_H_
#define ROADPART_TRAFFIC_DENSITY_MAPPER_H_

#include <vector>

#include "network/geometry.h"
#include "network/road_network.h"

namespace roadpart {

/// Maps planar vehicle positions to their nearest road segment and converts
/// position snapshots into per-segment densities (vehicles/metre). This is
/// the reproduction of the paper's "self-designed program … to map their
/// positions to corresponding road segments and compute the traffic density"
/// applied to MNTG trajectory output.
class DensityMapper {
 public:
  /// Builds a uniform-grid spatial index over segment geometry. The network
  /// must outlive the mapper.
  explicit DensityMapper(const RoadNetwork& network);

  /// Id of the segment geometrically closest to `p` (-1 on an empty
  /// network). Two-way twins overlap geometrically; ties break to the lower
  /// id deterministically.
  int NearestSegment(const Point& p) const;

  /// Counts the vehicles nearest to each segment and divides by length.
  std::vector<double> ComputeDensities(
      const std::vector<Point>& vehicle_positions) const;

 private:
  double SegmentDistance(int segment_id, const Point& p) const;

  const RoadNetwork& network_;
  double cell_ = 1.0;
  int gx_ = 1;
  int gy_ = 1;
  Point origin_;
  std::vector<std::vector<int>> buckets_;  // segment ids per cell
};

}  // namespace roadpart

#endif  // ROADPART_TRAFFIC_DENSITY_MAPPER_H_
