// Visualization workflow: generate a city, partition it, and export a
// GeoJSON FeatureCollection whose features carry `partition` and `density`
// properties — drop build/examples/partitions.geojson into geojson.io or
// QGIS and color by the `partition` property to get the paper's partition
// maps.
//
// Build & run:  ./build/examples/visualize_partitions [out.geojson]

#include <cstdio>
#include <string>

#include "roadpart/roadpart.h"

using namespace roadpart;

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "partitions.geojson";

  RoadNetwork net = GenerateDataset(DatasetPreset::kD1, /*seed=*/17).value();
  CongestionFieldOptions field_options;
  field_options.num_hotspots = 4;
  field_options.voronoi_tiling = true;
  field_options.seed = 29;
  CongestionField field(net, field_options);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  // Let the framework pick k the way the paper does (ANS minimum).
  OptimalKOptions sweep;
  sweep.partitioner.scheme = Scheme::kASG;
  sweep.partitioner.seed = 41;
  sweep.k_min = 2;
  sweep.k_max = 12;
  auto best = FindOptimalK(rg, sweep);
  if (!best.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 best.status().ToString().c_str());
    return 1;
  }
  std::printf("optimal k = %d (ANS %.4f)", best->optimal_k,
              best->optimal_ans);
  if (!best->local_minima.empty()) {
    std::printf("; other candidates:");
    for (int k : best->local_minima) std::printf(" %d", k);
  }
  std::printf("\n");

  const KSweepPoint* chosen = nullptr;
  for (const KSweepPoint& point : best->sweep) {
    if (point.k == best->optimal_k) chosen = &point;
  }
  if (chosen == nullptr) return 1;

  GeoJsonOptions geojson;
  geojson.partition = chosen->assignment;
  Status st = ExportGeoJson(net, geojson, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%d segments, %d partitions) — color by the "
              "'partition' property in any GeoJSON viewer\n",
              out_path.c_str(), net.num_segments(), best->optimal_k);
  return 0;
}
