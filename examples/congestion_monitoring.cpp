// Congestion monitoring: the paper's motivating scenario. A morning-peak
// traffic wave is micro-simulated over a radial (CBD-style) city and the
// network is re-partitioned at regular intervals with static density
// snapshots — "partitioning the network repeatedly at regular intervals of
// time using static congestion measures" (Section 1).
//
// Build & run:  ./build/examples/congestion_monitoring

#include <cstdio>

#include "roadpart/roadpart.h"

using namespace roadpart;

int main() {
  RadialOptions radial;
  radial.num_rings = 6;
  radial.num_spokes = 10;
  radial.ring_spacing_metres = 180.0;
  radial.seed = 3;
  RoadNetwork network = GenerateRadialNetwork(radial).value();
  std::printf("Radial city: %d intersections, %d segments\n",
              network.num_intersections(), network.num_segments());

  // Demand strongly attracted to the centre (the CBD).
  TripGeneratorOptions demand;
  demand.num_vehicles = 4000;
  demand.horizon_seconds = 1800.0;
  demand.num_hotspots = 1;
  demand.hotspot_bias = 0.85;
  demand.hotspot_radius_fraction = 0.10;
  demand.seed = 11;
  TripSet trips = GenerateTrips(network, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 2400.0;
  sim.record_every_seconds = 240.0;  // 10 snapshots
  sim.step_seconds = 2.0;
  auto result_or = RunMicrosim(network, trips.trips, sim);
  if (!result_or.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  SimulationResult sim_result = std::move(result_or).value();
  std::printf("Simulated %zu snapshots; %d trips completed\n\n",
              sim_result.densities.size(), sim_result.completed_trips);

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  Partitioner partitioner(options);

  // The tracker keeps region ids stable across snapshots, so "region 2"
  // refers to the same area all morning.
  PartitionTracker tracker;
  RoadGraph rg = RoadGraph::FromNetwork(network);
  std::vector<int> previous;
  std::printf("%8s %12s %10s %10s %10s %12s %8s\n", "t(min)", "supernodes",
              "intra", "inter", "ANS", "ARI vs prev", "churn");
  for (size_t t = 0; t < sim_result.densities.size(); ++t) {
    if (rg.SetFeatures(sim_result.densities[t]).ok()) {
      auto outcome_or = partitioner.PartitionRoadGraph(rg);
      if (!outcome_or.ok()) {
        std::fprintf(stderr, "t=%zu: %s\n", t,
                     outcome_or.status().ToString().c_str());
        continue;
      }
      PartitionOutcome outcome = std::move(outcome_or).value();
      auto aligned = tracker.Align(outcome.assignment);
      if (!aligned.ok()) continue;
      auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                     outcome.assignment);
      double ari = 0.0;
      if (!previous.empty()) {
        ari = AdjustedRandIndex(previous, outcome.assignment).value();
      }
      std::printf("%8.0f %12d %10.4f %10.4f %10.4f %12.3f %7.1f%%\n",
                  (t + 1) * sim.record_every_seconds / 60.0,
                  outcome.num_supernodes, eval->intra, eval->inter, eval->ans,
                  ari, 100.0 * tracker.last_churn());
      previous = outcome.assignment;
    }
  }
  std::printf("\nPartitions track the congestion wave: stability (ARI high, "
              "churn low) between adjacent snapshots once the peak forms; "
              "%d distinct regions appeared over the horizon.\n",
              tracker.num_regions_seen());
  return 0;
}
