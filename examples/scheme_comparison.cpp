// Scheme comparison: AG, ASG, NG, NSG and the Ji & Geroliminis baseline side
// by side on one D1-scale network — Figure 4 in miniature.
//
// Build & run:  ./build/examples/scheme_comparison [k]

#include <cstdio>
#include <cstdlib>

#include "roadpart/roadpart.h"

using namespace roadpart;

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 6;
  if (k < 2) k = 6;

  RoadNetwork network = GenerateDataset(DatasetPreset::kD1, /*seed=*/17).value();
  CongestionFieldOptions field_options;
  field_options.num_hotspots = 3;
  field_options.seed = 23;
  CongestionField field(network, field_options);
  (void)network.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(network);

  std::printf("D1-scale network: %d segments, partitioning with k=%d\n\n",
              network.num_segments(), k);
  std::printf("%-15s %8s %8s %8s %8s %8s %6s\n", "scheme", "inter", "intra",
              "GDBI", "ANS", "Q", "k'");

  const Scheme schemes[] = {Scheme::kAG, Scheme::kASG, Scheme::kNG,
                            Scheme::kNSG, Scheme::kJiGeroliminis};
  for (Scheme scheme : schemes) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = k;
    options.seed = 99;
    Partitioner partitioner(options);
    auto outcome_or = partitioner.PartitionRoadGraph(rg);
    if (!outcome_or.ok()) {
      std::printf("%-15s failed: %s\n", SchemeName(scheme),
                  outcome_or.status().ToString().c_str());
      continue;
    }
    PartitionOutcome out = std::move(outcome_or).value();
    auto eval =
        EvaluatePartitions(rg.adjacency(), rg.features(), out.assignment);
    auto q = Modularity(GaussianWeightedGraph(rg.adjacency(), rg.features()),
                        out.assignment);
    std::printf("%-15s %8.4f %8.4f %8.4f %8.4f %8.4f %6d\n",
                SchemeName(scheme), eval->inter, eval->intra, eval->gdbi,
                eval->ans, q.ok() ? q.value() : 0.0, out.k_prime);
  }

  std::printf("\nLower GDBI/ANS and higher inter/Q indicate better "
              "partitioning; the alpha-Cut schemes should dominate NG, "
              "as in the paper.\n");
  return 0;
}
