// City-scale pipeline: an M1-sized synthetic city (~17k segments) through
// the full framework — supergraph mining with stability check, alpha-Cut
// partitioning — with the Table-3-style per-module timing breakdown.
//
// Build & run:  ./build/examples/city_scale

#include <cstdio>

#include "roadpart/roadpart.h"

using namespace roadpart;

int main() {
  std::printf("Generating an M1-scale city (Table 1: 17,206 segments)...\n");
  RoadNetwork network = GenerateDataset(DatasetPreset::kM1, /*seed=*/5).value();
  std::printf("  %d intersections, %d segments, %.1f sq miles\n",
              network.num_intersections(), network.num_segments(),
              network.Bounds().AreaSqMiles());

  CongestionFieldOptions field_options;
  field_options.num_hotspots = 5;
  field_options.seed = 9;
  CongestionField field(network, field_options);
  (void)network.SetDensities(field.Densities());

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  options.miner.stability.threshold = 0.9;  // Section 4.3.2 extension
  Partitioner partitioner(options);

  auto outcome_or = partitioner.PartitionNetwork(network);
  if (!outcome_or.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 outcome_or.status().ToString().c_str());
    return 1;
  }
  PartitionOutcome out = std::move(outcome_or).value();

  std::printf("\nSupergraph: kappa*=%d, %d supernodes before stability, "
              "%d after\n",
              out.mining_report.chosen_kappa,
              out.mining_report.supernodes_before_stability,
              out.mining_report.supernodes_after_stability);
  std::printf("Partitions: k=%d (k'=%d)\n", out.k_final, out.k_prime);

  RoadGraph rg = RoadGraph::FromNetwork(network);
  auto eval =
      EvaluatePartitions(rg.adjacency(), rg.features(), out.assignment);
  if (eval.ok()) {
    std::printf("Quality: inter=%.4f intra=%.4f GDBI=%.4f ANS=%.4f\n",
                eval->inter, eval->intra, eval->gdbi, eval->ans);
  }

  std::printf("\nRunning time breakdown (Table 3 style, seconds):\n");
  std::printf("  module 1 (road graph construction): %7.2f\n",
              out.module1_seconds);
  std::printf("  module 2 (supergraph mining):       %7.2f\n",
              out.module2_seconds);
  std::printf("  module 3 (supergraph partitioning): %7.2f\n",
              out.module3_seconds);
  std::printf("  total:                              %7.2f\n",
              out.module1_seconds + out.module2_seconds + out.module3_seconds);
  return 0;
}
