// Quickstart: build a small grid city, synthesize congestion hotspots,
// partition with the alpha-Cut framework and print the result.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "roadpart/roadpart.h"

using namespace roadpart;

int main() {
  // 1. A 12x12 perturbed grid network (~250 road segments).
  GridOptions grid;
  grid.rows = 12;
  grid.cols = 12;
  grid.spacing_metres = 120.0;
  grid.seed = 42;
  auto network_or = GenerateGridNetwork(grid);
  if (!network_or.ok()) {
    std::fprintf(stderr, "network generation failed: %s\n",
                 network_or.status().ToString().c_str());
    return 1;
  }
  RoadNetwork network = std::move(network_or).value();

  // 2. Spatially correlated congestion: three hotspots over an ambient base.
  CongestionFieldOptions field_options;
  field_options.num_hotspots = 3;
  field_options.seed = 7;
  CongestionField field(network, field_options);
  Status st = network.SetDensities(field.Densities());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("Network: %d intersections, %d road segments\n",
              network.num_intersections(), network.num_segments());

  // 3. Partition into k = 4 with alpha-Cut on the supergraph (scheme ASG).
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  options.seed = 1;
  Partitioner partitioner(options);
  auto outcome_or = partitioner.PartitionNetwork(network);
  if (!outcome_or.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 outcome_or.status().ToString().c_str());
    return 1;
  }
  PartitionOutcome outcome = std::move(outcome_or).value();

  std::printf("Partitioned into k=%d (k'=%d before reduction), "
              "%d supernodes mined\n",
              outcome.k_final, outcome.k_prime, outcome.num_supernodes);

  // 4. Evaluate with the paper's metrics.
  RoadGraph rg = RoadGraph::FromNetwork(network);
  auto eval_or =
      EvaluatePartitions(rg.adjacency(), rg.features(), outcome.assignment);
  if (eval_or.ok()) {
    std::printf("inter=%.4f  intra=%.4f  GDBI=%.4f  ANS=%.4f\n",
                eval_or->inter, eval_or->intra, eval_or->gdbi, eval_or->ans);
  }

  // 5. Per-partition summary.
  std::vector<int> sizes(outcome.k_final, 0);
  std::vector<double> mean_density(outcome.k_final, 0.0);
  for (size_t i = 0; i < outcome.assignment.size(); ++i) {
    sizes[outcome.assignment[i]]++;
    mean_density[outcome.assignment[i]] += network.density(static_cast<int>(i));
  }
  for (int p = 0; p < outcome.k_final; ++p) {
    std::printf("  partition %d: %4d segments, mean density %.4f veh/m\n", p,
                sizes[p], sizes[p] ? mean_density[p] / sizes[p] : 0.0);
  }
  return 0;
}
