// Ablation: Equation 3 as printed (the per-link sum collapses to a single
// Gaussian similarity, so |L_pq| has no effect) versus the link-count-aware
// variant matching the prose of Section 4.3.3 (Gaussian * sqrt(|L_pq|)).
// See DESIGN.md substitution #3.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void RunScheme(const RoadGraph& rg, DatasetPreset preset,
               SuperlinkWeightScheme scheme, const char* label, int k) {
  SupergraphMinerOptions miner;
  miner.min_supernodes = 60;  // keep the second level non-trivial
  miner.weight_scheme = scheme;
  auto sg = MineSupergraph(rg, miner);
  RP_CHECK(sg.ok());
  AlphaCutOptions cut_options;
  cut_options.pipeline.kmeans.seed = 11;
  auto cut = AlphaCutPartition(sg->links(), k, cut_options);
  RP_CHECK(cut.ok());
  auto assignment = sg->ExpandAssignment(cut->assignment).value();
  auto eval =
      EvaluatePartitions(rg.adjacency(), rg.features(), assignment).value();
  std::printf("%-4s %-18s %10.4f %10.4f %10.4f %10.4f %6d\n",
              GetDatasetSpec(preset).name.c_str(), label, eval.inter,
              eval.intra, eval.gdbi, eval.ans, cut->k_prime);
}

}  // namespace

int main() {
  std::printf("=== Ablation: superlink weighting scheme (k=6 / k=4) ===\n\n");
  std::printf("%-4s %-18s %10s %10s %10s %10s %6s\n", "", "weighting", "inter",
              "intra", "GDBI", "ANS", "k'");

  {
    RoadNetwork net = MakeCongestedDataset(DatasetPreset::kD1, 17);
    RoadGraph rg = RoadGraph::FromNetwork(net);
    RunScheme(rg, DatasetPreset::kD1, SuperlinkWeightScheme::kPaperEq3,
              "Eq.3 (printed)", 6);
    RunScheme(rg, DatasetPreset::kD1, SuperlinkWeightScheme::kLinkCountScaled,
              "link-count-aware", 6);
  }
  {
    RoadNetwork net = MakeCongestedDataset(DatasetPreset::kM1, 17);
    RoadGraph rg = RoadGraph::FromNetwork(net);
    RunScheme(rg, DatasetPreset::kM1, SuperlinkWeightScheme::kPaperEq3,
              "Eq.3 (printed)", 4);
    RunScheme(rg, DatasetPreset::kM1, SuperlinkWeightScheme::kLinkCountScaled,
              "link-count-aware", 4);
  }

  std::printf("\nBoth weightings produce comparable partition quality; the "
              "link-aware variant changes which boundaries the cut prefers "
              "when supernode pairs share many parallel adjacencies.\n");
  return 0;
}
