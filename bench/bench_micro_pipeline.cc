// Micro-benchmarks for the end-to-end framework across network sizes and
// schemes — the scalability story (supergraph schemes stay cheap as the
// road graph grows; direct schemes pay the full eigenproblem).

#include <benchmark/benchmark.h>

#include "core/partitioner.h"
#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

RoadGraph MakeRoadGraph(int side, uint64_t seed) {
  GridOptions opt;
  opt.rows = side;
  opt.cols = side;
  opt.seed = seed;
  RoadNetwork net = GenerateGridNetwork(opt).value();
  CongestionFieldOptions field;
  field.seed = seed + 1;
  CongestionField congestion(net, field);
  (void)net.SetDensities(congestion.Densities());
  return RoadGraph::FromNetwork(net);
}

void RunScheme(benchmark::State& state, Scheme scheme) {
  const int side = static_cast<int>(state.range(0));
  RoadGraph rg = MakeRoadGraph(side, 5);
  PartitionerOptions options;
  options.scheme = scheme;
  options.k = 4;
  options.seed = 1;
  Partitioner partitioner(options);
  for (auto _ : state) {
    auto outcome = partitioner.PartitionRoadGraph(rg);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["segments"] = rg.num_nodes();
}

void BM_PipelineASG(benchmark::State& state) {
  RunScheme(state, Scheme::kASG);
}
BENCHMARK(BM_PipelineASG)->Arg(16)->Arg(32)->Arg(64)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineAG(benchmark::State& state) { RunScheme(state, Scheme::kAG); }
BENCHMARK(BM_PipelineAG)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineNG(benchmark::State& state) { RunScheme(state, Scheme::kNG); }
BENCHMARK(BM_PipelineNG)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineNSG(benchmark::State& state) {
  RunScheme(state, Scheme::kNSG);
}
BENCHMARK(BM_PipelineNSG)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roadpart

BENCHMARK_MAIN();
