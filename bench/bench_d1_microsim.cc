// Paper-faithful D1 workload: the paper's small-network experiments use a
// 4-hour microsimulation sampled at 120 two-minute intervals, partitioned at
// t = 71 (inside the congested peak). This bench reproduces that exact
// pipeline with our traffic substrate — demand ramps up into a peak, the
// snapshot series is recorded, and the t = 71 snapshot is partitioned by
// every scheme (mini Table 2 on simulated rather than synthesized
// densities).

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

int main() {
  RoadNetwork net = GenerateDataset(DatasetPreset::kD1, 17).value();
  std::printf("=== D1 microsimulation experiment (paper Section 6.1: 4 hours"
              ", 120 x 2-minute intervals, t = 71) ===\n\n");

  // Peak-hour demand: departures concentrated in the middle of the horizon,
  // destinations biased to the CBD hotspots.
  TripGeneratorOptions demand;
  demand.num_vehicles = 30000;
  demand.horizon_seconds = 4.0 * 3600.0;
  demand.num_hotspots = 3;
  demand.hotspot_bias = 0.8;
  demand.hotspot_radius_fraction = 0.12;
  demand.seed = 23;
  TripSet trips = GenerateTrips(net, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 4.0 * 3600.0;
  sim.record_every_seconds = 120.0;  // 2-minute intervals -> 120 snapshots
  sim.step_seconds = 2.0;
  Timer timer;
  SimulationResult result = RunMicrosim(net, trips.trips, sim).value();
  std::printf("simulated %zu snapshots in %.1fs; %d / %zu trips completed\n",
              result.densities.size(), timer.Seconds(),
              result.completed_trips, trips.trips.size());

  SnapshotSeries series(net.num_segments());
  for (size_t t = 0; t < result.densities.size(); ++t) {
    RP_CHECK(series.Append((t + 1) * 120.0, result.densities[t]).ok());
  }
  int peak = series.PeakSnapshot();
  int t71 = std::min<int>(71, series.num_snapshots() - 1);
  std::printf("network-mean density: t=10 %.5f, t=%d %.5f (used), "
              "peak at t=%d %.5f\n\n",
              series.MeanDensity(std::min(10, series.num_snapshots() - 1)),
              t71, series.MeanDensity(t71), peak, series.MeanDensity(peak));

  RoadGraph rg = RoadGraph::FromNetwork(net);
  RP_CHECK(rg.SetFeatures(series.densities(t71)).ok());

  std::printf("%-15s %8s %8s %8s %8s %4s\n", "scheme", "inter", "intra",
              "GDBI", "ANS", "k");
  for (Scheme scheme : {Scheme::kAG, Scheme::kASG, Scheme::kNG, Scheme::kNSG,
                        Scheme::kJiGeroliminis}) {
    double best_ans = 1e300;
    PartitionEvaluation best{};
    int best_k = 0;
    for (int k = 2; k <= 12; ++k) {
      PartitionerOptions options;
      options.scheme = scheme;
      options.k = k;
      options.seed = 31;
      auto outcome = Partitioner(options).PartitionRoadGraph(rg);
      if (!outcome.ok()) continue;
      auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                     outcome->assignment);
      if (!eval.ok()) continue;
      if (eval->ans < best_ans) {
        best_ans = eval->ans;
        best = *eval;
        best_k = k;
      }
    }
    std::printf("%-15s %8.4f %8.4f %8.4f %8.4f %4d\n", SchemeName(scheme),
                best.inter, best.intra, best.gdbi, best.ans, best_k);
  }
  std::printf("\nPaper Table 2 reference: AG 0.3392 (k=6), ASG 0.3526 (k=6), "
              "NG 0.9362 (k=8), Ji&G 0.6210 (k=3).\n");
  return 0;
}
