// Micro-benchmarks for the graph substrate: dual road-graph construction
// (module 1), FIFO connected components (the O(max(n, m)) kernel of
// Algorithm 1), and supergraph mining end to end.

#include <benchmark/benchmark.h>

#include "core/supergraph_miner.h"
#include "graph/connected_components.h"
#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

RoadNetwork GridOfSize(int side, uint64_t seed) {
  GridOptions opt;
  opt.rows = side;
  opt.cols = side;
  opt.seed = seed;
  RoadNetwork net = GenerateGridNetwork(opt).value();
  CongestionFieldOptions field;
  field.seed = seed + 1;
  CongestionField congestion(net, field);
  (void)net.SetDensities(congestion.Densities());
  return net;
}

void BM_DualGraphConstruction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RoadNetwork net = GridOfSize(side, 3);
  for (auto _ : state) {
    CsrGraph dual = BuildDualAdjacency(net);
    benchmark::DoNotOptimize(dual);
  }
  state.SetItemsProcessed(state.iterations() * net.num_segments());
}
BENCHMARK(BM_DualGraphConstruction)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ConnectedComponents(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RoadNetwork net = GridOfSize(side, 3);
  CsrGraph dual = BuildDualAdjacency(net);
  for (auto _ : state) {
    auto labels = ConnectedComponents(dual);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations() * dual.num_nodes());
}
BENCHMARK(BM_ConnectedComponents)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_LabelConstrainedComponents(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RoadNetwork net = GridOfSize(side, 3);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  // Labels from a real feature clustering.
  std::vector<int> labels(rg.num_nodes());
  for (int v = 0; v < rg.num_nodes(); ++v) {
    labels[v] = static_cast<int>(rg.features()[v] * 50) % 5;
  }
  for (auto _ : state) {
    auto comps = LabelConstrainedComponents(rg.adjacency(), labels);
    benchmark::DoNotOptimize(comps);
  }
}
BENCHMARK(BM_LabelConstrainedComponents)->Arg(32)->Arg(64)->Arg(128);

void BM_MineSupergraph(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RoadNetwork net = GridOfSize(side, 3);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  for (auto _ : state) {
    auto sg = MineSupergraph(rg, {});
    benchmark::DoNotOptimize(sg);
  }
}
BENCHMARK(BM_MineSupergraph)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roadpart

BENCHMARK_MAIN();
