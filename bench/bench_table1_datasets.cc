// Reproduces Table 1: dataset statistics. Real San Francisco / Melbourne
// data is not distributable, so each dataset is synthesized at the published
// size (DESIGN.md substitution #1); this bench verifies the statistics land
// on the paper's numbers.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;

int main() {
  std::printf("=== Table 1: Dataset statistics (paper vs synthesized) ===\n\n");
  std::printf("%-4s %-26s | %14s | %21s | %23s\n", "", "Place",
              "Area (sq. ml.)", "Road seg", "Intersection pt");
  std::printf("%-4s %-26s | %6s %7s | %10s %10s | %11s %11s\n", "", "",
              "paper", "ours", "paper", "ours", "paper", "ours");

  for (DatasetPreset preset : {DatasetPreset::kD1, DatasetPreset::kM1,
                               DatasetPreset::kM2, DatasetPreset::kM3}) {
    DatasetSpec spec = GetDatasetSpec(preset);
    Timer timer;
    RoadNetwork net = GenerateDataset(preset, /*seed=*/7).value();
    double gen_seconds = timer.Seconds();
    std::printf("%-4s %-26s | %6.2f %7.2f | %10d %10d | %11d %11d   (%.2fs)\n",
                spec.name.c_str(), spec.place.c_str(), spec.area_sq_miles,
                net.Bounds().AreaSqMiles(), spec.segments, net.num_segments(),
                spec.intersections, net.num_intersections(), gen_seconds);
  }
  std::printf("\nTraffic: the paper populated M1/M2/M3 with 25,246 / 62,300 /"
              " 84,999 MNTG vehicles over 100 timestamps; our substitute\n"
              "(rp_traffic) generates equivalent demand — see"
              " bench_table3_runtime and the congestion_monitoring example.\n");
  return 0;
}
