// Micro-benchmarks for the eigensolvers: the dense Householder+QL path
// versus Lanczos on sparse graph operators — the dense-vs-sparse trade-off
// behind SpectralOptions::dense_threshold (and the paper's reliance on a
// high-performance eigensolver, Section 6.4).

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/lanczos.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {
namespace {

SparseMatrix RingMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> upper;
  for (int i = 0; i < n; ++i) {
    upper.push_back({i, (i + 1) % n, 1.0 + rng.NextDouble()});
  }
  for (int c = 0; c < n; ++c) {
    int a = static_cast<int>(rng.NextBounded(n));
    int b = static_cast<int>(rng.NextBounded(n));
    if (a != b) {
      upper.push_back({std::min(a, b), std::max(a, b), rng.NextDouble()});
    }
  }
  return SparseMatrix::SymmetricFromTriplets(n, upper).value();
}

void BM_DenseEigenFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DenseMatrix a = RingMatrix(n, 7).ToDense();
  for (auto _ : state) {
    auto eig = SymmetricEigenDecompose(a);
    benchmark::DoNotOptimize(eig);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DenseEigenFull)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_LanczosSmallestK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  SparseMatrix m = RingMatrix(n, 7);
  SparseOperator op(m);
  for (auto _ : state) {
    auto eig = LanczosEigen(op, k, SpectrumEnd::kSmallest);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_LanczosSmallestK)
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({4096, 4})
    ->Args({16384, 4})
    ->Args({4096, 16})
    ->Unit(benchmark::kMillisecond);

void BM_SparseMatVec(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SparseMatrix m = RingMatrix(n, 7);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    m.Multiply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.NumNonZeros());
}
BENCHMARK(BM_SparseMatVec)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_AlphaCutOperatorApply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SparseMatrix a = RingMatrix(n, 7);
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double v : d) s += v;
  RankOneUpdatedOperator m_op(a_op, d, 1.0 / s, -1.0);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    m_op.Apply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AlphaCutOperatorApply)->Arg(1024)->Arg(16384)->Arg(131072);

// --- Thread-scaling variants (range(1) = worker threads). The kernels are
// deterministic for any thread count, so these differ only in wall-clock.

void BM_SparseMatVecThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedParallelism threads(static_cast<int>(state.range(1)));
  SparseMatrix m = RingMatrix(n, 7);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    m.Multiply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.NumNonZeros());
}
BENCHMARK(BM_SparseMatVecThreads)
    ->Args({131072, 1})
    ->Args({131072, 2})
    ->Args({131072, 4})
    ->Args({131072, 8});

void BM_AlphaCutOperatorApplyThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedParallelism threads(static_cast<int>(state.range(1)));
  SparseMatrix a = RingMatrix(n, 7);
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double v : d) s += v;
  RankOneUpdatedOperator m_op(a_op, d, 1.0 / s, -1.0);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    m_op.Apply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AlphaCutOperatorApplyThreads)
    ->Args({131072, 1})
    ->Args({131072, 2})
    ->Args({131072, 4})
    ->Args({131072, 8});

void BM_LanczosSmallestKThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScopedParallelism threads(static_cast<int>(state.range(1)));
  SparseMatrix m = RingMatrix(n, 7);
  SparseOperator op(m);
  for (auto _ : state) {
    auto eig = LanczosEigen(op, 4, SpectrumEnd::kSmallest);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_LanczosSmallestKThreads)
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roadpart

BENCHMARK_MAIN();
