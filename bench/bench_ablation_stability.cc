// Ablation: the stability threshold epsilon_eta (Section 4.3.2). epsilon = 0
// is the plain ASG supergraph; raising it splits unstable supernodes, moving
// behaviour towards AG: more supernodes (higher cost), equal or better
// quality — the paper's "trade-off between quality and complexity".

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

int main() {
  RoadNetwork net = MakeCongestedDataset(DatasetPreset::kD1, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const int k = 6;

  std::printf("=== Ablation: stability threshold sweep on D1 (k=%d) ===\n\n",
              k);
  std::printf("%10s %13s %10s %10s %10s %10s\n", "eps_eta", "#supernodes",
              "mine(s)", "cut(s)", "ANS", "intra");

  // Densities are ~0.1 veh/m while Definition 9 adds 1 to numerator and
  // denominator, so eta compresses towards 1; the informative range sits
  // close to 1.0.
  for (double eps : {0.0, 0.9, 0.99, 0.995, 0.999, 0.9999, 1.0}) {
    PartitionerOptions options;
    options.scheme = Scheme::kASG;
    options.k = k;
    options.seed = 3;
    options.miner.stability.threshold = eps;
    auto outcome = Partitioner(options).PartitionRoadGraph(rg);
    if (!outcome.ok()) {
      std::printf("%10.4f  failed: %s\n", eps,
                  outcome.status().ToString().c_str());
      continue;
    }
    auto eval =
        EvaluatePartitions(rg.adjacency(), rg.features(), outcome->assignment)
            .value();
    std::printf("%10.4f %13d %10.3f %10.3f %10.4f %10.4f\n", eps,
                outcome->num_supernodes, outcome->module2_seconds,
                outcome->module3_seconds, eval.ans, eval.intra);
  }

  std::printf("\nAt eps=0 the supergraph is coarsest (cheapest); eps -> 1 "
              "approaches per-feature supernodes (the AG limit of "
              "Section 4.3.2).\n");
  return 0;
}
