// Ablation: the two k' -> k reduction strategies of Section 5.4 — global
// recursive bipartitioning (the paper's choice) versus greedy pruning
// (iteratively merging the closest pair). The paper argues greedy pruning is
// computationally intensive for large k'; this bench compares quality and
// time.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void Compare(DatasetPreset preset, int k) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  SupergraphMinerOptions miner;
  miner.min_supernodes = 60;  // keep the second level non-trivial
  auto sg = MineSupergraph(rg, miner);
  RP_CHECK(sg.ok());

  for (auto [method, label] :
       {std::pair{ExactKMethod::kRecursiveBipartition, "recursive (paper)"},
        std::pair{ExactKMethod::kGreedyMerge, "greedy pruning"}}) {
    AlphaCutOptions options;
    options.pipeline.kmeans.seed = 21;
    options.pipeline.exact_k_method = method;
    Timer timer;
    auto cut = AlphaCutPartition(sg->links(), k, options);
    double seconds = timer.Seconds();
    RP_CHECK(cut.ok());
    auto assignment = sg->ExpandAssignment(cut->assignment).value();
    auto eval =
        EvaluatePartitions(rg.adjacency(), rg.features(), assignment).value();
    std::printf("%-4s %-18s %6d %6d %10.4f %10.4f %10.3f\n",
                spec.name.c_str(), label, cut->k_prime, cut->k_final, eval.ans,
                eval.intra, seconds);
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: k' -> k reduction strategy ===\n\n");
  std::printf("%-4s %-18s %6s %6s %10s %10s %10s\n", "", "strategy", "k'", "k",
              "ANS", "intra", "cut(s)");
  Compare(DatasetPreset::kD1, 6);
  Compare(DatasetPreset::kM1, 4);
  Compare(DatasetPreset::kM2, 5);
  std::printf("\nBoth reach exactly k; recursive bipartitioning re-embeds "
              "each split spectrally, greedy pruning only follows edge "
              "weights.\n");
  return 0;
}
