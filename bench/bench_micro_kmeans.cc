// Micro-benchmarks for the clustering kernels: the 1-D k-means used in the
// kappa sweep of Algorithm 1 (the paper's O(t*n*kappa) cost model) and the
// multi-dimensional k-means over spectral embedding rows.

#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "common/rng.h"

namespace roadpart {
namespace {

std::vector<double> RandomFeatures(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> f(n);
  for (double& x : f) x = rng.NextDouble(0.0, 0.2);
  return f;
}

void BM_KMeans1D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  std::vector<double> f = RandomFeatures(n, 3);
  for (auto _ : state) {
    auto r = KMeans1D(f, k);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans1D)
    ->Args({1000, 5})
    ->Args({10000, 5})
    ->Args({100000, 5})
    ->Args({100000, 20})
    ->Args({1000000, 5});

void BM_McgEvaluation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> f = RandomFeatures(n, 5);
  auto km = KMeans1D(f, 5).value();
  for (auto _ : state) {
    auto mcg = ModeratedClusteringGain(f, km.assignment, 5);
    benchmark::DoNotOptimize(mcg);
  }
}
BENCHMARK(BM_McgEvaluation)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_KappaSweep(benchmark::State& state) {
  // The full Algorithm-1 sweep cost: k-means + MCG for kappa = 2..kmax.
  const int n = static_cast<int>(state.range(0));
  const int kappa_max = static_cast<int>(state.range(1));
  std::vector<double> f = RandomFeatures(n, 7);
  for (auto _ : state) {
    double best = 0.0;
    for (int kappa = 2; kappa <= kappa_max; ++kappa) {
      auto km = KMeans1D(f, kappa).value();
      best = std::max(
          best, ModeratedClusteringGain(f, km.assignment, kappa).value());
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_KappaSweep)->Args({5000, 30})->Args({20000, 30})
    ->Unit(benchmark::kMillisecond);

void BM_KMeansRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  Rng rng(9);
  DenseMatrix pts(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) pts(i, d) = rng.NextGaussian();
  }
  KMeansOptions opt;
  opt.restarts = 3;
  opt.seed = 1;
  for (auto _ : state) {
    auto r = KMeansRows(pts, dim, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KMeansRows)
    ->Args({1000, 4})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roadpart

BENCHMARK_MAIN();
