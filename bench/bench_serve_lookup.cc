// Bench of the partition-serving read path (src/serve/) on a generated
// >=50k-segment city network:
//
//   - snapshot build + (de)serialization round trip,
//   - single-core point lookups (KD-tree seed + grid refinement), the
//     headline number — target is >1M lookups/s on one core,
//   - range counts (KD subtree aggregation),
//   - the batched text serve loop at 1 and DefaultParallelism() threads,
//     with an answer fingerprint proving thread count changes nothing.
//
// A brute-force subsample guards against benching a wrong index. Prints one
// JSON object per line; pass --out=FILE to also write the lines atomically
// (results/BENCH_serve_lookup.json records a captured run).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

// Synthetic but spatially coherent labels: k angular sectors around the
// network centroid, so range queries see realistic contiguous partitions.
std::vector<int> AngularSectorLabels(const RoadNetwork& net, int k) {
  double cx = 0.0, cy = 0.0;
  for (const Intersection& node : net.intersections()) {
    cx += node.position.x;
    cy += node.position.y;
  }
  if (net.num_intersections() > 0) {
    cx /= net.num_intersections();
    cy /= net.num_intersections();
  }
  std::vector<int> labels(static_cast<size_t>(net.num_segments()));
  for (int s = 0; s < net.num_segments(); ++s) {
    Point m = SegmentMidpoint(net, s);
    double angle = std::atan2(m.y - cy, m.x - cx);  // [-pi, pi]
    int sector = static_cast<int>((angle + M_PI) / (2.0 * M_PI) * k);
    labels[static_cast<size_t>(s)] = std::min(std::max(sector, 0), k - 1);
  }
  labels[0] = k - 1;  // pin num_partitions() == k
  return labels;
}

double BestOf(int runs, const std::function<double()>& fn) {
  double best = -1.0;
  for (int r = 0; r < runs; ++r) {
    double s = fn();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  std::string report;
  auto emit = [&](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    report += line;
  };

  // >=50k segments: the M1/M2 scale the acceptance gate names.
  CityOptions city;
  city.num_intersections = 30000;
  city.target_segments = 52000;
  city.area_sq_miles = 40.0;
  city.seed = 17;
  RoadNetwork net = GenerateCityNetwork(city).value();
  const int k = 8;
  std::vector<int> labels = AngularSectorLabels(net, k);

  const int runs = NumRuns(5);
  const int threads = BenchThreads();

  Timer build_timer;
  Snapshot snapshot = Snapshot::Build(net, labels).value();
  double build_seconds = build_timer.Seconds();
  emit(StrPrintf("{\"bench\": \"serve_lookup\", \"segments\": %d, "
                 "\"intersections\": %d, \"partitions\": %d, "
                 "\"snapshot_bytes\": %zu, \"build_seconds\": %.6f, "
                 "\"runs\": %d, \"threads\": %d}\n",
                 snapshot.num_segments(), snapshot.num_intersections(),
                 snapshot.num_partitions(), snapshot.buffer().size(),
                 build_seconds, runs, threads));

  // Query cloud: uniform over the bounding box inflated by 5%, so a slice of
  // the queries exercises the outside-the-box search path too.
  BoundingBox box = net.Bounds();
  const double pad_x = 0.05 * (box.max.x - box.min.x);
  const double pad_y = 0.05 * (box.max.y - box.min.y);
  const int num_queries = 1'000'000;
  std::vector<Point> queries(num_queries);
  Rng rng(99);
  for (Point& q : queries) {
    q.x = box.min.x - pad_x + rng.NextDouble() * (box.max.x - box.min.x + 2 * pad_x);
    q.y = box.min.y - pad_y + rng.NextDouble() * (box.max.y - box.min.y + 2 * pad_y);
  }

  // Guard: the index must agree with brute force before its speed matters.
  for (int i = 0; i < 2000; ++i) {
    const Point& q = queries[static_cast<size_t>(i * 499)];
    NearestHit bf = BruteForceNearestSegment(net, q);
    PointAnswer got = snapshot.NearestSegment(q);
    RP_CHECK_EQ(got.segment_id, bf.segment_id);
  }

  // Headline: single-core point lookups. The checksum keeps the loop live.
  uint64_t checksum = 0;
  double lookup_seconds = BestOf(runs, [&] {
    uint64_t local = 0;
    Timer t;
    for (const Point& q : queries) {
      PointAnswer a = snapshot.NearestSegment(q);
      local += static_cast<uint64_t>(a.segment_id + a.partition_id);
    }
    double s = t.Seconds();
    checksum = local;
    return s;
  });
  emit(StrPrintf("{\"phase\": \"point_lookup_single_core\", \"queries\": %d, "
                 "\"seconds\": %.6f, \"lookups_per_second\": %.0f, "
                 "\"checksum\": \"%016llx\"}\n",
                 num_queries, lookup_seconds, num_queries / lookup_seconds,
                 static_cast<unsigned long long>(checksum)));

  // Range counts over random boxes spanning 1%-30% of each axis.
  const int num_ranges = 20000;
  std::vector<BoundingBox> boxes(num_ranges);
  for (BoundingBox& b : boxes) {
    double w = (0.01 + 0.29 * rng.NextDouble()) * (box.max.x - box.min.x);
    double h = (0.01 + 0.29 * rng.NextDouble()) * (box.max.y - box.min.y);
    double x = box.min.x + rng.NextDouble() * (box.max.x - box.min.x - w);
    double y = box.min.y + rng.NextDouble() * (box.max.y - box.min.y - h);
    b = BoundingBox{Point{x, y}, Point{x + w, y + h}};
  }
  uint64_t range_checksum = 0;
  double range_seconds = BestOf(runs, [&] {
    uint64_t local = 0;
    Timer t;
    for (const BoundingBox& b : boxes) {
      std::vector<int64_t> counts = snapshot.CountByPartition(b);
      for (int64_t c : counts) local += static_cast<uint64_t>(c);
    }
    double s = t.Seconds();
    range_checksum = local;
    return s;
  });
  emit(StrPrintf("{\"phase\": \"range_count\", \"queries\": %d, "
                 "\"seconds\": %.6f, \"ranges_per_second\": %.0f, "
                 "\"checksum\": \"%016llx\"}\n",
                 num_ranges, range_seconds, num_ranges / range_seconds,
                 static_cast<unsigned long long>(range_checksum)));

  // The text serve loop end to end (parse + lookup + render), 200k queries,
  // at 1 thread and at the default parallelism; identical output required.
  const int num_text = 200000;
  std::string query_text;
  query_text.reserve(static_cast<size_t>(num_text) * 48);
  for (int i = 0; i < num_text; ++i) {
    const Point& q = queries[static_cast<size_t>(i)];
    query_text += StrPrintf("point %.17g %.17g\n", q.x, q.y);
  }
  uint64_t fp_serial = 0;
  for (int t_count : {1, threads}) {
    uint64_t fp = 0;
    double serve_seconds = BestOf(runs, [&] {
      ServeOptions options;
      options.num_threads = t_count;
      std::string answers;
      Timer t;
      RP_CHECK_OK(ServeQueries(snapshot, query_text, options, &answers));
      double s = t.Seconds();
      fp = Fnv1a64(answers);
      return s;
    });
    if (t_count == 1) fp_serial = fp;
    RP_CHECK_EQ(fp, fp_serial);  // thread count must not change the answers
    emit(StrPrintf("{\"phase\": \"serve_loop_text\", \"threads\": %d, "
                   "\"queries\": %d, \"seconds\": %.6f, "
                   "\"queries_per_second\": %.0f, "
                   "\"answers_fingerprint\": \"%016llx\"}\n",
                   t_count, num_text, serve_seconds, num_text / serve_seconds,
                   static_cast<unsigned long long>(fp)));
    if (t_count == threads) break;  // threads may be 1
  }

  // Disk round trip: Save + Load through the checksummed envelope.
  double roundtrip_seconds = BestOf(runs, [&] {
    std::string path = "/tmp/bench_serve_lookup.rpsnap";
    Timer t;
    RP_CHECK_OK(snapshot.Save(path));
    Snapshot loaded = Snapshot::Load(path).value();
    double s = t.Seconds();
    RP_CHECK_EQ(loaded.source_fingerprint(), snapshot.source_fingerprint());
    std::remove(path.c_str());
    return s;
  });
  emit(StrPrintf("{\"phase\": \"snapshot_disk_round_trip\", "
                 "\"seconds\": %.6f}\n", roundtrip_seconds));

  if (!out_path.empty()) {
    RP_CHECK_OK(AtomicWriteFile(out_path, report));
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
