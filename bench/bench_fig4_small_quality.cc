// Reproduces Figure 4: inter / intra / GDBI / ANS versus k in [2, 20] on the
// small network D1 for the schemes AG and ASG against the NG baseline.
// Values are medians over repeated randomized runs (paper: 100 executions;
// default here is smaller — set RP_RUNS=100 to match).

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

int main() {
  RoadNetwork net = MakeCongestedDataset(DatasetPreset::kD1, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const int runs = NumRuns();
  std::printf("=== Figure 4: partitioning quality on D1 (%d segments), "
              "median of %d runs ===\n\n",
              net.num_segments(), runs);

  const Scheme schemes[] = {Scheme::kAG, Scheme::kASG, Scheme::kNG};
  const int k_min = 2;
  const int k_max = 20;

  // Collect everything once, print the four panels.
  std::vector<std::vector<PartitionEvaluation>> results(3);
  for (int s = 0; s < 3; ++s) {
    for (int k = k_min; k <= k_max; ++k) {
      results[s].push_back(
          MedianEvaluation(rg, schemes[s], k, runs, 100 * (s + 1)));
    }
  }

  struct Panel {
    const char* title;
    double PartitionEvaluation::*field;
    const char* better;
  };
  const Panel panels[] = {
      {"(a) inter-partition distance", &PartitionEvaluation::inter, "higher"},
      {"(b) intra-partition distance", &PartitionEvaluation::intra, "lower"},
      {"(c) GDBI", &PartitionEvaluation::gdbi, "lower"},
      {"(d) ANS", &PartitionEvaluation::ans, "lower"},
  };
  for (const Panel& panel : panels) {
    std::printf("--- Fig 4%s (%s = better) ---\n", panel.title, panel.better);
    std::printf("%4s %10s %10s %10s\n", "k", "AG", "ASG", "NG");
    for (int k = k_min; k <= k_max; ++k) {
      std::printf("%4d %10.4f %10.4f %10.4f\n", k,
                  results[0][k - k_min].*(panel.field),
                  results[1][k - k_min].*(panel.field),
                  results[2][k - k_min].*(panel.field));
    }
    std::printf("\n");
  }

  // Headline check mirroring the paper's reading of the figure. Beyond the
  // workload's natural number of regions both methods are forced into
  // arbitrary extra splits and run neck and neck, so wins-or-ties (within
  // 5%) is the meaningful count.
  int ag_wins = 0;
  int ag_ties = 0;
  int count = 0;
  double ag_min = 1e300;
  double asg_min = 1e300;
  double ng_min = 1e300;
  for (int k = k_min; k <= k_max; ++k) {
    double ag = results[0][k - k_min].ans;
    double asg = results[1][k - k_min].ans;
    double ng = results[2][k - k_min].ans;
    ag_wins += ag < ng;
    ag_ties += (ag >= ng && ag <= 1.05 * ng);
    ag_min = std::min(ag_min, ag);
    asg_min = std::min(asg_min, asg);
    ng_min = std::min(ng_min, ng);
    ++count;
  }
  std::printf("AG beats NG on ANS at %d / %d values of k and ties (within "
              "5%%) at %d more (paper: beats at all k).\n",
              ag_wins, count, ag_ties);
  std::printf("ANS minima over k: AG %.4f, ASG %.4f, NG %.4f — the paper's "
              "ordering (alpha-Cut framework << NG) %s.\n",
              ag_min, asg_min, ng_min,
              std::min(ag_min, asg_min) < ng_min ? "reproduces"
                                                 : "does NOT reproduce");
  return 0;
}
