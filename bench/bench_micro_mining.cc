// Micro-bench of the supergraph-mining fast path (Algorithm 1 end to end)
// on a generated >=50k-segment city network:
//
//   - baseline kappa sweep: KMeans1D(vector) per kappa — re-sorts the sample
//     for every kappa (the pre-fast-path Phase A cost),
//   - workspace kappa sweep: one Sorted1DWorkspace, serial and parallel,
//   - MineSupergraph end to end at 1 and DefaultParallelism() threads, with
//     an output fingerprint proving the runs are identical.
//
// Prints one JSON object per line; results/BENCH_mining_fastpath.json
// records a captured run (see EXPERIMENTS.md).

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "common/timer.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

// FNV-1a over raw bytes; doubles are hashed bit-exactly, so two runs fingerprint
// equal only if every member id, feature, weight and report entry matches.
struct Fnv {
  uint64_t h = 1469598103934665603ULL;
  void Bytes(const void* p, size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void Int(int v) { Bytes(&v, sizeof(v)); }
  void Double(double v) { Bytes(&v, sizeof(v)); }
};

uint64_t FingerprintMining(const Supergraph& sg,
                           const SupergraphMiningReport& rep) {
  Fnv f;
  f.Int(sg.num_supernodes());
  for (const Supernode& sn : sg.supernodes()) {
    f.Int(static_cast<int>(sn.members.size()));
    for (int v : sn.members) f.Int(v);
    f.Double(sn.feature);
  }
  const CsrGraph& links = sg.links();
  for (int s = 0; s < links.num_nodes(); ++s) {
    for (size_t i = 0; i < links.Neighbors(s).size(); ++i) {
      f.Int(s);
      f.Int(links.Neighbors(s)[i]);
      f.Double(links.NeighborWeights(s)[i]);
    }
  }
  for (int k : rep.kappas) f.Int(k);
  for (double m : rep.mcg) f.Double(m);
  for (int k : rep.shortlisted_kappas) f.Int(k);
  for (int c : rep.component_counts) f.Int(c);
  f.Double(rep.threshold);
  f.Int(rep.chosen_kappa);
  f.Int(rep.supernodes_before_stability);
  f.Int(rep.supernodes_after_stability);
  for (double s : rep.stability_values) f.Double(s);
  return f.h;
}

double BestOf(int runs, const std::function<double()>& fn) {
  double best = -1.0;
  for (int r = 0; r < runs; ++r) {
    double s = fn();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fingerprint_only =
      argc > 1 && std::strcmp(argv[1], "--fingerprint") == 0;

  // >=50k segments: the M1/M2 scale where the serial sweep dominates.
  CityOptions city;
  city.num_intersections = 30000;
  city.target_segments = 52000;
  city.area_sq_miles = 40.0;
  city.seed = 17;
  RoadNetwork net = GenerateCityNetwork(city).value();
  CongestionFieldOptions field;
  field.num_hotspots = 8;
  field.voronoi_tiling = true;
  field.seed = 1017;
  CongestionField congestion(net, field);
  RP_CHECK(net.SetDensities(congestion.Densities()).ok());
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const int n = rg.num_nodes();

  SupergraphMinerOptions options;  // defaults: max_kappa 30, sample 5000

  // The sampled sweep values, exactly as MineSupergraph draws them.
  std::vector<double> sample = rg.features();
  if (options.sample_size > 0 && n > options.sample_size) {
    Rng rng(options.seed);
    rng.Shuffle(sample);
    sample.resize(options.sample_size);
  }
  const int max_kappa = std::min<int>(options.max_kappa,
                                      static_cast<int>(sample.size()));

  const int runs = NumRuns(5);
  const int threads = BenchThreads();

  if (!fingerprint_only) {
    std::printf("{\"bench\": \"mining_fastpath\", \"segments\": %d, "
                "\"sample\": %zu, \"max_kappa\": %d, \"runs\": %d, "
                "\"threads\": %d}\n",
                n, sample.size(), max_kappa, runs, threads);

    // Baseline Phase A: sort-per-kappa (the pre-fast-path cost model).
    double baseline_sweep = BestOf(runs, [&] {
      Timer t;
      for (int kappa = 2; kappa <= max_kappa; ++kappa) {
        auto km = KMeans1D(sample, kappa).value();
        auto mcg = ModeratedClusteringGain(sample, km.assignment, kappa);
        RP_CHECK(mcg.ok());
      }
      return t.Seconds();
    });
    std::printf("{\"phase\": \"sweep_baseline_sort_per_kappa\", "
                "\"seconds\": %.6f}\n", baseline_sweep);

    // Workspace Phase A, serial and parallel.
    for (int t_count : {1, threads}) {
      double ws_sweep = BestOf(runs, [&] {
        ScopedParallelism scoped(t_count);
        Timer t;
        Sorted1DWorkspace ws(sample);
        std::vector<double> mcg(max_kappa - 1, 0.0);
        ParallelFor(
            max_kappa - 1,
            [&](int i) {
              auto km = KMeans1D(ws, i + 2).value();
              mcg[i] =
                  ModeratedClusteringGain(sample, km.assignment, i + 2).value();
            },
            t_count, /*grain=*/1);
        return t.Seconds();
      });
      std::printf("{\"phase\": \"sweep_workspace\", \"threads\": %d, "
                  "\"seconds\": %.6f}\n", t_count, ws_sweep);
      if (t_count == threads) break;  // threads may be 1
    }
  }

  // End to end, with fingerprints.
  uint64_t fp_serial = 0;
  for (int t_count : {1, threads}) {
    ScopedParallelism scoped(t_count);
    uint64_t fp = 0;
    double total = BestOf(fingerprint_only ? 1 : runs, [&] {
      SupergraphMiningReport rep;
      Timer t;
      auto sg = MineSupergraph(rg, options, &rep);
      double s = t.Seconds();
      RP_CHECK(sg.ok());
      fp = FingerprintMining(*sg, rep);
      return s;
    });
    if (t_count == 1) fp_serial = fp;
    RP_CHECK_EQ(fp, fp_serial);  // thread count must not change the output
    std::printf("{\"phase\": \"mine_supergraph_end_to_end\", \"threads\": %d, "
                "\"seconds\": %.6f, \"fingerprint\": \"%016llx\"}\n",
                t_count, total, static_cast<unsigned long long>(fp));
    if (t_count == threads) break;
  }
  return 0;
}
