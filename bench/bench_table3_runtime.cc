// Reproduces Table 3: running time in seconds, broken down into the three
// framework modules (1: road graph construction, 2: supergraph mining,
// 3: supergraph partitioning), for D1, M1, M2 and M3.
//
// Paper (Matlab, 2014 hardware): D1 <1s; M1 9/54/66 = 129s; M2 24/848/1033 =
// 1905s; M3 137/2044/3726 = 5907s. Absolute numbers differ (C++ vs Matlab,
// different hardware); the reproduced shape is module3 >= module2 >> module1
// and superlinear growth with network size.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

int main() {
  std::printf("=== Table 3: running time (seconds) ===\n\n");
  std::printf("%-8s %10s %10s %10s %10s %8s\n", "Module", "D1", "M1", "M2",
              "M3", "");

  const DatasetPreset presets[] = {DatasetPreset::kD1, DatasetPreset::kM1,
                                   DatasetPreset::kM2, DatasetPreset::kM3};
  double module1[4];
  double module2[4];
  double module3[4];
  double mine_sweep[4];
  double mine_cluster[4];
  double mine_superlink[4];
  int supernodes[4];
  int k_for[4] = {6, 4, 5, 5};  // the paper's optimal k per dataset

  for (int d = 0; d < 4; ++d) {
    RoadNetwork net = MakeCongestedDataset(presets[d], 17);
    PartitionerOptions options;
    options.scheme = Scheme::kASG;
    options.k = k_for[d];
    options.seed = 1;
    auto outcome = Partitioner(options).PartitionNetwork(net);
    RP_CHECK(outcome.ok());
    module1[d] = outcome->module1_seconds;
    module2[d] = outcome->module2_seconds;
    module3[d] = outcome->module3_seconds;
    mine_sweep[d] = outcome->mining_report.sweep_seconds;
    mine_cluster[d] = outcome->mining_report.cluster_seconds;
    mine_superlink[d] = outcome->mining_report.superlink_seconds;
    supernodes[d] = outcome->num_supernodes;
  }

  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   (paper: <1 / 9 / 24 / 137)\n",
              "1", module1[0], module1[1], module1[2], module1[3]);
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   (paper: <1 / 54 / 848 / 2044)\n",
              "2", module2[0], module2[1], module2[2], module2[3]);
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   (paper: <1 / 66 / 1033 / 3726)\n",
              "3", module3[0], module3[1], module3[2], module3[3]);
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   (paper: <1 / 129 / 1905 / 5907)\n",
              "Total", module1[0] + module2[0] + module3[0],
              module1[1] + module2[1] + module3[1],
              module1[2] + module2[2] + module3[2],
              module1[3] + module2[3] + module3[3]);
  std::printf("\nModule 2 breakdown (mining fast path; see "
              "results/BENCH_mining_fastpath.json):\n");
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   kappa sweep (Phase A)\n",
              "2a", mine_sweep[0], mine_sweep[1], mine_sweep[2],
              mine_sweep[3]);
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   full-data clustering + "
              "components (Phase B)\n",
              "2b", mine_cluster[0], mine_cluster[1], mine_cluster[2],
              mine_cluster[3]);
  std::printf("%-8s %10.3f %10.3f %10.3f %10.3f   superlink accumulation "
              "(Phase D)\n",
              "2c", mine_superlink[0], mine_superlink[1], mine_superlink[2],
              mine_superlink[3]);

  std::printf("\nSupernodes mined: %d / %d / %d / %d — partitioning cost "
              "follows the supergraph order, not the raw segment count.\n",
              supernodes[0], supernodes[1], supernodes[2], supernodes[3]);
  double totals[4];
  for (int d = 0; d < 4; ++d) {
    totals[d] = module1[d] + module2[d] + module3[d];
  }
  bool grows = totals[0] < totals[1] && totals[1] < totals[2];
  bool module1_cheapest = true;
  for (int d = 0; d < 4; ++d) {
    module1_cheapest &= module1[d] <= module2[d] + module3[d];
  }
  std::printf("Shape check: cost grows with network size (D1<M1<M2: %s) and "
              "module 1 is the cheapest (%s), as in the paper.\n",
              grows ? "yes" : "no", module1_cheapest ? "yes" : "no");
  return 0;
}
