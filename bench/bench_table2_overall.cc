// Reproduces Table 2: the best (lowest) ANS over k in [2, 20] and the k that
// attains it, for AG, ASG, NG and the Ji & Geroliminis baseline. Paper:
// AG 0.3392 (k=6), ASG 0.3526 (k=6), NG 0.9362 (k=8), Ji&G 0.6210 (k=3).
// Absolute values depend on the (synthesized) data; the ordering
// AG ~ ASG < Ji&G < NG is the reproduced shape.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

int main() {
  RoadNetwork net = MakeCongestedDataset(DatasetPreset::kD1, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const int runs = NumRuns();
  std::printf("=== Table 2: overall quality of partitioning on D1 "
              "(median of %d runs) ===\n\n",
              runs);
  std::printf("%-15s %10s %4s   %s\n", "Scheme", "ANS", "k", "paper (ANS, k)");

  struct Row {
    Scheme scheme;
    const char* paper;
  };
  const Row rows[] = {
      {Scheme::kAG, "0.3392, k=6"},
      {Scheme::kASG, "0.3526, k=6"},
      {Scheme::kNG, "0.9362, k=8"},
      {Scheme::kJiGeroliminis, "0.6210, k=3"},
  };

  double ans_by_scheme[4];
  ResilienceTally tally;
  for (int s = 0; s < 4; ++s) {
    double best_ans = 1e300;
    int best_k = 0;
    for (int k = 2; k <= 20; ++k) {
      PartitionEvaluation eval = MedianEvaluation(
          rg, rows[s].scheme, k, runs, 700 + 31 * s, /*num_threads=*/0,
          &tally);
      if (eval.num_partitions > 0 && eval.ans < best_ans) {
        best_ans = eval.ans;
        best_k = k;
      }
    }
    ans_by_scheme[s] = best_ans;
    std::printf("%-15s %10.4f %4d   (%s)\n", SchemeName(rows[s].scheme),
                best_ans, best_k, rows[s].paper);
  }
  std::printf("\n%s\n", tally.ToString().c_str());

  double best_alpha = std::min(ans_by_scheme[0], ans_by_scheme[1]);
  double best_baseline = std::min(ans_by_scheme[2], ans_by_scheme[3]);
  std::printf("\nShape check: the alpha-Cut framework (best of AG/ASG, "
              "%.4f) better than the best baseline (%.4f): %s\n",
              best_alpha, best_baseline,
              best_alpha < best_baseline ? "YES (matches paper)" : "NO");
  return 0;
}
