// Reproduces Figure 6: the distribution of supernode stability measures
// eta(sigma) — (a) the ~105 supernodes of D1 and (b) the ~5,391 supernodes
// of M2. The paper's reading: most supernodes are highly stable, so the
// supergraph can be partitioned as-is.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void StabilityProfile(DatasetPreset preset, bool print_all) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  SupergraphMinerOptions opt;  // no stability splitting: measure the raw sets
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, opt, &report);
  RP_CHECK(sg.ok());

  std::vector<double> eta = report.stability_values;
  std::sort(eta.begin(), eta.end());
  std::printf("--- Fig 6 (%s): %zu supernodes ---\n", spec.name.c_str(),
              eta.size());
  if (print_all) {
    std::printf("sorted stability values:\n");
    for (size_t i = 0; i < eta.size(); ++i) {
      std::printf("%7.4f%s", eta[i], (i + 1) % 10 == 0 ? "\n" : " ");
    }
    if (eta.size() % 10 != 0) std::printf("\n");
  } else {
    std::printf("deciles of the sorted stability distribution:\n");
    for (int d = 0; d <= 10; ++d) {
      size_t idx = std::min(eta.size() - 1, d * eta.size() / 10);
      std::printf("  p%-3d %7.4f\n", d * 10, eta[idx]);
    }
  }
  int above_90 = 0;
  for (double e : eta) above_90 += (e >= 0.9);
  std::printf("fraction with eta >= 0.9: %.1f%% (paper: \"most supernodes "
              "are highly stable\")\n\n",
              100.0 * above_90 / eta.size());
}

}  // namespace

int main() {
  std::printf("=== Figure 6: stability measure of supernodes ===\n\n");
  StabilityProfile(DatasetPreset::kD1, /*print_all=*/true);
  StabilityProfile(DatasetPreset::kM2, /*print_all=*/false);
  return 0;
}
