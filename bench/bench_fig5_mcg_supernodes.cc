// Reproduces Figure 5: the MCG measure and the number of supernodes as
// functions of kappa on the large networks M1 and M2. The paper observes a
// steep MCG rise up to kappa ~ 5, a maximum around kappa = 18 for M1, and a
// monotonically growing supernode count; with epsilon_theta at 2000 (M1) /
// 5000 (M2) the optimal kappa comes out as 5 with 2,081 / 5,391 supernodes.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void SweepDataset(DatasetPreset preset) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const std::vector<double>& features = rg.features();

  std::printf("--- Fig 5 (%s: %d segments) ---\n", spec.name.c_str(),
              net.num_segments());
  std::printf("%6s %16s %14s\n", "kappa", "MCG", "#supernodes");

  double best_mcg = -1.0;
  int best_kappa = 0;
  for (int kappa = 2; kappa <= 30; ++kappa) {
    auto km = KMeans1D(features, kappa).value();
    double mcg =
        ModeratedClusteringGain(features, km.assignment, kappa).value();
    ComponentLabels comps =
        LabelConstrainedComponents(rg.adjacency(), km.assignment);
    std::printf("%6d %16.4f %14d\n", kappa, mcg, comps.num_components);
    if (mcg > best_mcg) {
      best_mcg = mcg;
      best_kappa = kappa;
    }
  }

  // The miner's automatic threshold, and the resulting choice.
  SupergraphMinerOptions opt;
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, opt, &report);
  RP_CHECK(sg.ok());
  std::printf("MCG maximum at kappa=%d; miner threshold %.1f -> chosen "
              "kappa*=%d with %d supernodes (matrix order reduced "
              "%d -> %d)\n\n",
              best_kappa, report.threshold, report.chosen_kappa,
              sg->num_supernodes(), net.num_segments(), sg->num_supernodes());
}

}  // namespace

int main() {
  std::printf("=== Figure 5: MCG measure and number of supernodes in large "
              "networks ===\n\n");
  SweepDataset(DatasetPreset::kM1);
  SweepDataset(DatasetPreset::kM2);
  std::printf("Paper reference: optimal kappa = 5 for both, with 2,081 (M1) "
              "and 5,391 (M2) supernodes;\nthe dimension reduction from "
              "17,206 / 53,494 segments is the scalability mechanism.\n");
  return 0;
}
