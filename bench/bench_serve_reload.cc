// Bench of the serving runtime's resilience machinery (src/serve/runtime.*)
// on a generated >=50k-segment city network:
//
//   - hot snapshot swap: full Reload latency (read + envelope verify +
//     structural re-validation + pointer swap) for a valid candidate,
//   - corrupt-candidate rejection: how quickly a byte-flipped candidate is
//     refused (the window during which the old snapshot is the only one
//     serving),
//   - serving under reload churn: a session interleaving query windows with
//     `!reload` of the SAME snapshot file — the answer fingerprint must
//     equal the reload-free run's, proving churn changes nothing,
//   - isolate-policy overhead: clean queries through strict vs isolate
//     parsing (same answers, so the delta is pure policy bookkeeping),
//   - shed throughput: how fast a saturated admission controller turns
//     query lines into `shed` answers.
//
// Prints one JSON object per line; pass --out=FILE to also write the lines
// atomically (results/BENCH_serve_resilience.json records a captured run).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

// Spatially coherent labels (k angular sectors), as in bench_serve_lookup.
std::vector<int> AngularSectorLabels(const RoadNetwork& net, int k) {
  double cx = 0.0, cy = 0.0;
  for (const Intersection& node : net.intersections()) {
    cx += node.position.x;
    cy += node.position.y;
  }
  if (net.num_intersections() > 0) {
    cx /= net.num_intersections();
    cy /= net.num_intersections();
  }
  std::vector<int> labels(static_cast<size_t>(net.num_segments()));
  for (int s = 0; s < net.num_segments(); ++s) {
    Point m = SegmentMidpoint(net, s);
    double angle = std::atan2(m.y - cy, m.x - cx);
    int sector = static_cast<int>((angle + M_PI) / (2.0 * M_PI) * k);
    labels[static_cast<size_t>(s)] = std::min(std::max(sector, 0), k - 1);
  }
  labels[0] = k - 1;  // pin num_partitions() == k
  return labels;
}

double BestOf(int runs, const std::function<double()>& fn) {
  double best = -1.0;
  for (int r = 0; r < runs; ++r) {
    double s = fn();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  std::string report;
  auto emit = [&](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    report += line;
  };

  CityOptions city;
  city.num_intersections = 30000;
  city.target_segments = 52000;
  city.area_sq_miles = 40.0;
  city.seed = 17;
  RoadNetwork net = GenerateCityNetwork(city).value();
  Snapshot snapshot = Snapshot::Build(net, AngularSectorLabels(net, 8)).value();

  const int runs = NumRuns(5);
  const int threads = BenchThreads();
  const std::string snap_path = "/tmp/bench_serve_reload.rpsnap";
  RP_CHECK_OK(snapshot.Save(snap_path));
  emit(StrPrintf("{\"bench\": \"serve_resilience\", \"segments\": %d, "
                 "\"partitions\": %d, \"snapshot_bytes\": %zu, "
                 "\"runs\": %d, \"threads\": %d}\n",
                 snapshot.num_segments(), snapshot.num_partitions(),
                 snapshot.buffer().size(), runs, threads));

  // Hot swap of a valid candidate: the full admission pipeline.
  SnapshotManager manager;
  RP_CHECK_OK(manager.Reload(snap_path));
  double reload_seconds = BestOf(runs, [&] {
    Timer t;
    RP_CHECK_OK(manager.Reload(snap_path));
    return t.Seconds();
  });
  emit(StrPrintf("{\"phase\": \"hot_reload_valid\", \"seconds\": %.6f, "
                 "\"reloads_per_second\": %.1f}\n",
                 reload_seconds, 1.0 / reload_seconds));

  // Corrupt-candidate rejection latency: byte-flip mid-file; the manager
  // must refuse it (old snapshot keeps serving) — how fast is the verdict?
  std::string corrupt = ReadFileBytes(snap_path).value();
  corrupt[corrupt.size() / 2] ^= 0x5A;
  const std::string corrupt_path = "/tmp/bench_serve_reload_corrupt.rpsnap";
  RP_CHECK_OK(AtomicWriteFile(corrupt_path, corrupt));
  const int64_t version_before = manager.diagnostics().version;
  double reject_seconds = BestOf(runs, [&] {
    Timer t;
    RP_CHECK(manager.Reload(corrupt_path).code() == StatusCode::kCorruption);
    return t.Seconds();
  });
  RP_CHECK_EQ(manager.diagnostics().version, version_before);  // never swapped
  emit(StrPrintf("{\"phase\": \"corrupt_candidate_rejected\", "
                 "\"seconds\": %.6f}\n",
                 reject_seconds));

  // Query cloud reused by the serving phases below.
  BoundingBox box = net.Bounds();
  const int num_queries = 200000;
  std::string query_text;
  query_text.reserve(static_cast<size_t>(num_queries) * 48);
  Rng rng(99);
  for (int i = 0; i < num_queries; ++i) {
    double x = box.min.x + rng.NextDouble() * (box.max.x - box.min.x);
    double y = box.min.y + rng.NextDouble() * (box.max.y - box.min.y);
    query_text += StrPrintf("point %.17g %.17g\n", x, y);
  }

  // Serving under reload churn: split the queries into 8 windows separated
  // by `!reload` of the SAME file. Answers must be byte-identical to the
  // reload-free run — hot swap may cost time but never correctness.
  const int num_windows = 8;
  std::string session_script;
  {
    const size_t stride = query_text.size() / num_windows;
    size_t begin = 0;
    for (int w = 0; w < num_windows; ++w) {
      size_t end = w + 1 == num_windows ? query_text.size()
                                        : query_text.find('\n', (w + 1) * stride) + 1;
      session_script += query_text.substr(begin, end - begin);
      if (w + 1 < num_windows) {
        session_script += StrPrintf("!reload %s\n", snap_path.c_str());
      }
      begin = end;
    }
  }
  uint64_t plain_fp = 0;
  double plain_seconds = BestOf(runs, [&] {
    ServeRuntimeOptions options;
    options.serve.num_threads = threads;
    ServeRuntime runtime(options);
    RP_CHECK_OK(runtime.LoadSnapshot(snap_path));
    std::string answers;
    Timer t;
    RP_CHECK_OK(runtime.ServeBatch(query_text, &answers));
    double s = t.Seconds();
    plain_fp = Fnv1a64(answers);
    return s;
  });
  emit(StrPrintf("{\"phase\": \"serve_no_reload\", \"queries\": %d, "
                 "\"seconds\": %.6f, \"queries_per_second\": %.0f, "
                 "\"answers_fingerprint\": \"%016llx\"}\n",
                 num_queries, plain_seconds, num_queries / plain_seconds,
                 static_cast<unsigned long long>(plain_fp)));
  double churn_seconds = BestOf(runs, [&] {
    ServeRuntimeOptions options;
    options.serve.num_threads = threads;
    ServeRuntime runtime(options);
    RP_CHECK_OK(runtime.LoadSnapshot(snap_path));
    Timer t;
    std::string answers = runtime.RunSession(session_script).value();
    double s = t.Seconds();
    // Strip the `reload ok ...` answer lines, then the query answers must
    // match the reload-free run exactly.
    std::string stripped;
    stripped.reserve(answers.size());
    size_t pos = 0;
    while (pos < answers.size()) {
      size_t eol = answers.find('\n', pos);
      std::string_view line(answers.data() + pos, eol - pos);
      if (line.rfind("reload ok ", 0) != 0) {
        stripped.append(line);
        stripped.push_back('\n');
      }
      pos = eol + 1;
    }
    RP_CHECK_EQ(Fnv1a64(stripped), plain_fp);
    return s;
  });
  emit(StrPrintf("{\"phase\": \"serve_under_reload_churn\", \"queries\": %d, "
                 "\"reloads\": %d, \"seconds\": %.6f, "
                 "\"queries_per_second\": %.0f, \"slowdown_vs_plain\": %.3f}\n",
                 num_queries, num_windows - 1, churn_seconds,
                 num_queries / churn_seconds, churn_seconds / plain_seconds));

  // Isolate-policy overhead on clean input: identical answers, so the delta
  // is pure per-line policy bookkeeping.
  for (const char* policy : {"strict", "isolate"}) {
    const bool isolate = std::strcmp(policy, "isolate") == 0;
    uint64_t fp = 0;
    double seconds = BestOf(runs, [&] {
      ServeOptions options;
      options.num_threads = threads;
      options.on_malformed = isolate ? MalformedQueryPolicy::kIsolate
                                     : MalformedQueryPolicy::kStrict;
      std::string answers;
      Timer t;
      RP_CHECK_OK(ServeQueries(snapshot, query_text, options, &answers));
      double s = t.Seconds();
      fp = Fnv1a64(answers);
      return s;
    });
    RP_CHECK_EQ(fp, plain_fp);
    emit(StrPrintf("{\"phase\": \"policy_overhead\", \"policy\": \"%s\", "
                   "\"queries\": %d, \"seconds\": %.6f, "
                   "\"queries_per_second\": %.0f}\n",
                   policy, num_queries, seconds, num_queries / seconds));
  }

  // Shed throughput: a saturated admission controller refusing (almost)
  // every line must be far cheaper than serving it.
  double shed_seconds = BestOf(runs, [&] {
    ServeOptions options;
    options.num_threads = threads;
    options.on_malformed = MalformedQueryPolicy::kIsolate;
    options.max_inflight_queries = 1;
    std::string answers;
    Timer t;
    ServeBatchStats stats;
    RP_CHECK_OK(ServeQueries(snapshot, query_text, options, &answers, &stats));
    double s = t.Seconds();
    RP_CHECK_EQ(stats.shed, num_queries - 1);
    return s;
  });
  emit(StrPrintf("{\"phase\": \"admission_shed\", \"queries\": %d, "
                 "\"seconds\": %.6f, \"sheds_per_second\": %.0f}\n",
                 num_queries, shed_seconds, (num_queries - 1) / shed_seconds));

  std::remove(snap_path.c_str());
  std::remove(corrupt_path.c_str());
  if (!out_path.empty()) {
    RP_CHECK_OK(AtomicWriteFile(out_path, report));
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
