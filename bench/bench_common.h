#ifndef ROADPART_BENCH_BENCH_COMMON_H_
#define ROADPART_BENCH_BENCH_COMMON_H_

// Shared setup for the paper-reproduction benches: synthesized Table-1
// datasets with spatially structured congestion, plus small helpers.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "roadpart/roadpart.h"

namespace roadpart::bench {

/// Generates a Table-1 dataset and overlays a hotspot congestion field whose
/// hotspot count scales with the network size (CBD plus sub-centres).
inline RoadNetwork MakeCongestedDataset(DatasetPreset preset, uint64_t seed) {
  RoadNetwork net = GenerateDataset(preset, seed).value();
  CongestionFieldOptions field;
  switch (preset) {
    case DatasetPreset::kD1:
      field.num_hotspots = 3;
      break;
    case DatasetPreset::kM1:
      field.num_hotspots = 5;
      break;
    case DatasetPreset::kM2:
      field.num_hotspots = 8;
      break;
    case DatasetPreset::kM3:
      field.num_hotspots = 10;
      break;
  }
  field.hotspot_radius_fraction = 0.15;
  // Rush-hour structure: distinct congestion levels tile the whole city
  // (see CongestionFieldOptions::voronoi_tiling), matching the paper's
  // peak-interval snapshots rather than isolated hotspots over an empty
  // background.
  field.voronoi_tiling = true;
  field.seed = seed + 1000;
  CongestionField congestion(net, field);
  RP_CHECK(net.SetDensities(congestion.Densities()).ok());
  return net;
}

/// Median of a non-empty vector (by value).
inline double Median(std::vector<double> v) {
  RP_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

/// Number of repeated randomized runs; the paper reports medians of 100
/// executions. Override with RP_RUNS=<n> to trade fidelity for speed.
inline int NumRuns(int fallback = 13) {
  const char* env = std::getenv("RP_RUNS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Worker-thread count the benches run with. Honors RP_THREADS (through
/// DefaultParallelism); thread counts never change benchmark *results*, only
/// wall-clock, because every kernel is deterministic by construction.
inline int BenchThreads() { return DefaultParallelism(); }

/// Aggregates RunDiagnostics over the repeated executions of a bench sweep,
/// so a scheme that silently leaned on the eigensolver fallback ladder (or
/// on input repairs) is visible next to its quality numbers.
struct ResilienceTally {
  int runs = 0;             ///< outcomes absorbed
  int escalated = 0;        ///< runs past kLanczosFirstTry / kDense
  int best_effort = 0;      ///< runs with a non-converged embedding
  int densities_repaired = 0;  ///< total repaired entries across runs
  double worst_ritz_residual = 0.0;

  void Absorb(const RunDiagnostics& diag) {
    ++runs;
    if (diag.eigen.solver_path > SolverPath::kLanczosFirstTry) ++escalated;
    if (!diag.eigen.all_converged) ++best_effort;
    densities_repaired += diag.density_repairs.total_repaired();
    worst_ritz_residual =
        std::max(worst_ritz_residual, diag.eigen.worst_ritz_residual);
  }

  /// One line, e.g. "resilience: 2/13 escalated, 0 best-effort, ...".
  std::string ToString() const {
    return StrPrintf(
        "resilience: %d/%d escalated, %d best-effort, %d densities repaired, "
        "worst Ritz residual %.3e",
        escalated, runs, best_effort, densities_repaired,
        worst_ritz_residual);
  }
};

/// Runs one scheme at one k and returns the paper's four metrics as the
/// median over `runs` randomized executions. `tally`, when given, absorbs
/// every successful run's RunDiagnostics.
inline PartitionEvaluation MedianEvaluation(const RoadGraph& rg,
                                            Scheme scheme, int k, int runs,
                                            uint64_t seed_base = 1,
                                            int num_threads = 0,
                                            ResilienceTally* tally = nullptr) {
  std::vector<double> inter;
  std::vector<double> intra;
  std::vector<double> gdbi;
  std::vector<double> ans;
  for (int r = 0; r < runs; ++r) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = k;
    options.seed = seed_base + r;
    options.num_threads = num_threads;
    auto outcome = Partitioner(options).PartitionRoadGraph(rg);
    if (!outcome.ok()) continue;
    if (tally != nullptr) tally->Absorb(outcome->diagnostics);
    auto eval =
        EvaluatePartitions(rg.adjacency(), rg.features(), outcome->assignment);
    if (!eval.ok()) continue;
    inter.push_back(eval->inter);
    intra.push_back(eval->intra);
    gdbi.push_back(eval->gdbi);
    ans.push_back(eval->ans);
  }
  PartitionEvaluation out;
  if (!inter.empty()) {
    out.inter = Median(inter);
    out.intra = Median(intra);
    out.gdbi = Median(gdbi);
    out.ans = Median(ans);
    out.num_partitions = k;
  }
  return out;
}

}  // namespace roadpart::bench

#endif  // ROADPART_BENCH_BENCH_COMMON_H_
