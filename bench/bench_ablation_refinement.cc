// Ablation: the boundary-refinement post-pass (core/refinement.h), an
// extension beyond the paper's pipeline. It generalizes Ji & Geroliminis's
// boundary adjustment to the actual cut objective; this bench measures what
// it buys each scheme on the D1 and M1 workloads.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void Compare(DatasetPreset preset, int k) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  for (Scheme scheme : {Scheme::kAG, Scheme::kASG}) {
    if (preset != DatasetPreset::kD1 && scheme == Scheme::kAG) continue;
    for (bool refine : {false, true}) {
      PartitionerOptions options;
      options.scheme = scheme;
      options.k = k;
      options.seed = 7;
      options.refine_boundary = refine;
      Timer timer;
      auto outcome = Partitioner(options).PartitionRoadGraph(rg);
      double seconds = timer.Seconds();
      if (!outcome.ok()) {
        std::printf("%-4s %-4s refine=%d failed: %s\n", spec.name.c_str(),
                    SchemeName(scheme), refine,
                    outcome.status().ToString().c_str());
        continue;
      }
      auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                     outcome->assignment)
                      .value();
      std::printf("%-4s %-4s refine=%d  k=%2d ans=%7.4f intra=%7.4f "
                  "obj=%9.4f  (%.2fs)\n",
                  spec.name.c_str(), SchemeName(scheme), refine,
                  outcome->k_final, eval.ans, eval.intra, outcome->objective,
                  seconds);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation: boundary refinement post-pass ===\n\n");
  Compare(DatasetPreset::kD1, 6);
  Compare(DatasetPreset::kM1, 8);
  std::printf("\nRefinement strictly lowers the cut objective by moving "
              "boundary segments (supernodes for ASG); quality metrics "
              "follow where the objective aligns with congestion "
              "homogeneity.\n");
  return 0;
}
