// Reproduces Figure 7: partitioning quality (inter, intra, ANS — plus GDBI)
// versus k on the large networks M1, M2 and M3 under the supergraph scheme.
// Paper reference points: best ANS 0.423 @ k=4 (M1), 0.511 @ k=5 (M2),
// 0.512 @ k=5 (M3); quality degrades as the network grows, but stays far
// better than the NG baseline's small-network 0.9362.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void SweepDataset(DatasetPreset preset, int k_max) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);

  // Mine the supergraph once; sweep k over the same supergraph (what the
  // framework does when re-partitioning at different granularities).
  Timer timer;
  SupergraphMinerOptions miner;
  auto sg = MineSupergraph(rg, miner);
  RP_CHECK(sg.ok());
  double mine_seconds = timer.Seconds();

  std::printf("--- Fig 7 (%s): %d segments -> %d supernodes "
              "(mined in %.2fs) ---\n",
              spec.name.c_str(), net.num_segments(), sg->num_supernodes(),
              mine_seconds);
  std::printf("%4s %10s %10s %10s %10s %10s %6s\n", "k", "inter", "intra",
              "GDBI", "ANS", "ANS(gp)", "k'");

  double best_ans = 1e300;
  int best_k = 0;
  for (int k = 2; k <= k_max; ++k) {
    AlphaCutOptions cut_options;
    cut_options.pipeline.kmeans.seed = 900 + k;
    auto cut = AlphaCutPartition(sg->links(), k, cut_options);
    if (!cut.ok()) {
      std::printf("%4d  (failed: %s)\n", k, cut.status().ToString().c_str());
      continue;
    }
    auto assignment = sg->ExpandAssignment(cut->assignment).value();
    auto eval = EvaluatePartitions(rg.adjacency(), rg.features(), assignment);
    RP_CHECK(eval.ok());
    // Also the greedy-pruning reduction (the paper's Section 5.4
    // alternative), which tends to merge better on large supergraphs.
    cut_options.pipeline.exact_k_method = ExactKMethod::kGreedyMerge;
    auto cut_gp = AlphaCutPartition(sg->links(), k, cut_options);
    double ans_gp = 0.0;
    if (cut_gp.ok()) {
      auto assignment_gp = sg->ExpandAssignment(cut_gp->assignment).value();
      auto eval_gp =
          EvaluatePartitions(rg.adjacency(), rg.features(), assignment_gp);
      if (eval_gp.ok()) ans_gp = eval_gp->ans;
    }
    std::printf("%4d %10.4f %10.4f %10.4f %10.4f %10.4f %6d\n", k,
                eval->inter, eval->intra, eval->gdbi, eval->ans, ans_gp,
                cut->k_prime);
    double k_best = std::min(eval->ans, ans_gp > 0.0 ? ans_gp : eval->ans);
    if (k_best < best_ans) {
      best_ans = k_best;
      best_k = k;
    }
  }
  std::printf("best ANS %.4f at k=%d\n\n", best_ans, best_k);
}

}  // namespace

int main() {
  std::printf("=== Figure 7: road supergraph partitioning results in large "
              "networks (scheme ASG) ===\n\n");
  SweepDataset(DatasetPreset::kM1, 20);
  SweepDataset(DatasetPreset::kM2, 20);
  SweepDataset(DatasetPreset::kM3, 20);
  return 0;
}
