// Section 6.4's real-time proposal, quantified: "after having its relatively
// small partitions, they can be repeatedly subjected to partitioning
// distributively with the changing congestion measures".
//
// Two experiments:
//
//   1. One-shot refresh (M1/M2): a full re-partition at the refined
//      granularity vs one distributed per-region refresh, with the refresh's
//      phase breakdown (trigger check / sub-partition / merge).
//
//   2. Interval series (M1): a drifting congestion field sampled at several
//      snapshots, re-partitioned (a) from scratch at every snapshot and
//      (b) through the IncrementalRepartitioner — dirty-region detection,
//      cached cuts, warm-started eigensolves. Emits one JSON object per line;
//      pass --out=FILE to also write them atomically
//      (results/BENCH_repartition_incremental.json records a captured run).
//
// Threads: --threads=N (default: DefaultParallelism, i.e. RP_THREADS) sets
// the per-region fan-out width. The bench re-runs the series at 1/2/8 threads
// and fingerprints the assignments — thread counts change wall time only,
// never a byte.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/durable_io.h"
#include "common/timer.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

uint64_t AssignmentFingerprint(uint64_t h, const std::vector<int>& a) {
  return Fnv1a64(a.data(), a.size() * sizeof(int), h);
}

void PrintPhases(const RepartitionRefreshStats& s) {
  std::printf("       phases: trigger %.4fs | sub-partition %.4fs | "
              "merge %.4fs   (%d dirty / %d clean, %d warm-started)\n",
              s.trigger_seconds, s.subpartition_seconds, s.merge_seconds,
              s.dirty, s.clean, s.warm_started);
}

// Experiment 1: one-shot refresh on a single phase change, M1 and M2.
void Compare(DatasetPreset preset, int k_top, int k_inner, int threads) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);

  // Initial whole-network partitioning (done once, offline).
  PartitionerOptions top;
  top.scheme = Scheme::kASG;
  top.k = k_top;
  top.seed = 7;
  Timer timer;
  auto initial = Partitioner(top).PartitionRoadGraph(rg).value();
  double initial_seconds = timer.Seconds();

  // Congestion changes: a later phase of the same field.
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 5;
  field_opt.hotspot_radius_fraction = 0.15;
  field_opt.voronoi_tiling = true;
  field_opt.seed = 17 + 1000;
  CongestionField field(net, field_opt);
  RP_CHECK(rg.SetFeatures(field.DensitiesAt(0.6)).ok());

  // (a) full re-partition at the refined granularity.
  PartitionerOptions full;
  full.scheme = Scheme::kASG;
  full.k = k_top * k_inner;
  full.seed = 9;
  timer.Restart();
  auto global = Partitioner(full).PartitionRoadGraph(rg);
  double global_seconds = timer.Seconds();

  // (b) distributed refresh inside the existing regions, at the requested
  // fan-out width. trigger_ratio stays 0 here — every region is re-cut, the
  // historical comparison — so the phase breakdown shows where a naive
  // refresh spends its time (the series experiment below shows the fix).
  DistributedRepartitionOptions dist;
  dist.partitioner.scheme = Scheme::kASG;
  dist.partitioner.k = k_inner;
  dist.partitioner.seed = 9;
  // Regions are small; a shallow kappa sweep suffices per region.
  dist.partitioner.miner.max_kappa = 10;
  dist.partitioner.miner.sample_size = 2000;
  dist.num_threads = threads;
  auto local = RepartitionWithinRegions(rg, initial.assignment, dist);

  std::printf("%-4s initial k=%d (%.2fs), refresh fan-out at %d thread%s\n",
              spec.name.c_str(), initial.k_final, initial_seconds, threads,
              threads == 1 ? "" : "s");
  if (global.ok()) {
    auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                   global->assignment).value();
    std::printf("     full re-partition    k=%3d  ans=%.4f  %.3fs\n",
                global->k_final, eval.ans, global_seconds);
  }
  if (local.ok()) {
    auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                   local->assignment).value();
    std::printf("     distributed refresh  k=%3d  ans=%.4f  %.3fs "
                "(%d regions re-cut)\n",
                local->k_final, eval.ans, local->seconds,
                local->regions_repartitioned);
    PrintPhases(local->stats);
  }
  std::printf("\n");
}

// Experiment 2: the interval series. Returns the series fingerprint so main
// can cross-check thread counts.
struct SeriesRun {
  uint64_t fingerprint = 0;
  std::string json;  // per-interval + summary lines (empty for reruns)
};

SeriesRun RunSeries(int threads, bool emit_json) {
  constexpr int kTop = 4, kInner = 3, kSnapshots = 8;

  RoadNetwork net = MakeCongestedDataset(DatasetPreset::kM1, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);

  // The drifting field: hotspots migrate as time01 advances. The series
  // samples a rush-hour window at 5-minute intervals — per-interval drift is
  // modest, so most regions stay within their trigger band most intervals
  // and only the regions a hotspot is crossing go dirty. That dirty/clean
  // split is exactly what the incremental engine exploits.
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 5;
  field_opt.hotspot_radius_fraction = 0.15;
  field_opt.voronoi_tiling = true;
  field_opt.seed = 17 + 1000;
  CongestionField field(net, field_opt);

  SnapshotSeries series(rg.num_nodes());
  for (int t = 0; t < kSnapshots; ++t) {
    double time01 = 0.30 + 0.35 * t / (kSnapshots - 1);
    RP_CHECK(series.Append(300.0 * t, field.DensitiesAt(time01)).ok());
  }

  // (a) full re-partition from scratch at every snapshot.
  std::vector<double> full_seconds(kSnapshots), full_ans(kSnapshots);
  for (int t = 0; t < kSnapshots; ++t) {
    RP_CHECK(rg.SetFeatures(series.densities(t)).ok());
    PartitionerOptions full;
    full.scheme = Scheme::kASG;
    full.k = kTop * kInner;
    full.seed = 9;
    Timer timer;
    auto outcome = Partitioner(full).PartitionRoadGraph(rg).value();
    full_seconds[t] = timer.Seconds();
    full_ans[t] = EvaluatePartitions(rg.adjacency(), rg.features(),
                                     outcome.assignment).value().ans;
  }

  // (b) the incremental engine over the same series.
  IntervalDriverOptions opt;
  opt.initial.scheme = Scheme::kASG;
  opt.initial.k = kTop;
  opt.initial.seed = 7;
  opt.refresh.partitioner.scheme = Scheme::kASG;
  opt.refresh.partitioner.k = kInner;
  opt.refresh.partitioner.seed = 9;
  // A broader MCG shortlist keeps a >= k-supernode clustering available for
  // mildly-perturbed regions, so a re-cut never falls into the strictest-
  // stability re-mine (the 0.3-0.8s degenerate dense solve behind the old
  // inversion). Dirty-region triggers do the rest: only regions whose
  // spread moved by 0.4 global scales (or whose boundary shifted as much)
  // are re-cut at all.
  opt.refresh.partitioner.miner.mcg_threshold_fraction = 0.5;
  opt.refresh.trigger_ratio = 0.40;
  opt.refresh.boundary_delta_ratio = 0.40;
  opt.refresh.warm_start_embeddings = true;
  opt.refresh.num_threads = threads;
  RP_CHECK(rg.SetFeatures(series.densities(0)).ok());
  IntervalDriveResult drive = DriveIntervals(rg, series, opt).value();

  SeriesRun run;
  run.fingerprint = kFnv1a64Basis;
  for (const IntervalStep& step : drive.steps) {
    run.fingerprint = AssignmentFingerprint(run.fingerprint, step.assignment);
  }
  if (!emit_json) return run;

  std::printf("=== M1 interval series: %d snapshots, drifting field, "
              "%d thread%s ===\n", kSnapshots, threads,
              threads == 1 ? "" : "s");
  std::printf("  initial top-level partition: k=%d, %.3fs (paid once)\n\n",
              drive.k_top, drive.initial_seconds);
  std::printf("  t   full(s)  incr(s)  dirty/clean  warm  full-ans incr-ans"
              "  churn%%\n");

  double full_after_first = 0.0, incr_after_first = 0.0;
  double full_ans_sum = 0.0, incr_ans_sum = 0.0;
  bool strictly_cheaper = true;
  for (int t = 0; t < kSnapshots; ++t) {
    const IntervalStep& step = drive.steps[t];
    std::printf("  %-3d %7.3f  %7.3f  %5d/%-5d  %4d  %8.4f %8.4f  %5.1f\n",
                t, full_seconds[t], step.seconds, step.stats.dirty,
                step.stats.clean, step.stats.warm_started, full_ans[t],
                step.ans, 100.0 * step.churn);
    run.json += StrPrintf(
        "{\"interval\": %d, \"full_seconds\": %.6f, \"full_ans\": %.6f, "
        "\"incremental_seconds\": %.6f, \"incremental_ans\": %.6f, "
        "\"k_final\": %d, \"dirty\": %d, \"clean\": %d, "
        "\"warm_started\": %d, \"warm_rejected\": %d, \"churn\": %.6f, "
        "\"trigger_seconds\": %.6f, \"subpartition_seconds\": %.6f, "
        "\"merge_seconds\": %.6f}\n",
        t, full_seconds[t], full_ans[t], step.seconds, step.ans, step.k_final,
        step.stats.dirty, step.stats.clean, step.stats.warm_started,
        step.stats.warm_rejected, step.churn, step.stats.trigger_seconds,
        step.stats.subpartition_seconds, step.stats.merge_seconds);
    full_ans_sum += full_ans[t];
    incr_ans_sum += step.ans;
    if (t > 0) {
      full_after_first += full_seconds[t];
      incr_after_first += step.seconds;
      if (step.seconds >= full_seconds[t]) strictly_cheaper = false;
    }
  }
  const double mean_full_ans = full_ans_sum / kSnapshots;
  const double mean_incr_ans = incr_ans_sum / kSnapshots;
  std::printf("\n  after the first interval: full %.3fs vs incremental "
              "%.3fs (%.1fx), incremental %s cheaper on every interval; "
              "mean ans %.4f (full) vs %.4f (incremental)\n\n",
              full_after_first, incr_after_first,
              incr_after_first > 0.0 ? full_after_first / incr_after_first
                                     : 0.0,
              strictly_cheaper ? "strictly" : "NOT strictly",
              mean_full_ans, mean_incr_ans);
  run.json += StrPrintf(
      "{\"phase\": \"summary\", \"full_seconds_after_first\": %.6f, "
      "\"incremental_seconds_after_first\": %.6f, \"speedup\": %.3f, "
      "\"strictly_cheaper_after_first\": %s, \"mean_full_ans\": %.4f, "
      "\"mean_incremental_ans\": %.4f, \"mean_ans_ratio\": %.4f}\n",
      full_after_first, incr_after_first,
      incr_after_first > 0.0 ? full_after_first / incr_after_first : 0.0,
      strictly_cheaper ? "true" : "false", mean_full_ans, mean_incr_ans,
      mean_full_ans > 0.0 ? mean_incr_ans / mean_full_ans : 0.0);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = BenchThreads();
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) threads = 1;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  std::printf("=== Section 6.4: distributed re-partitioning for repeated "
              "intervals ===\n\n");
  Compare(DatasetPreset::kM1, 4, 3, threads);
  Compare(DatasetPreset::kM2, 5, 3, threads);

  SeriesRun main_run = RunSeries(threads, /*emit_json=*/true);

  // Thread-count invariance: the refreshed assignments must be bit-identical
  // whatever the fan-out width.
  std::vector<int> widths = {1, 2, 8};
  bool invariant = true;
  for (int w : widths) {
    if (w == threads) continue;
    SeriesRun rerun = RunSeries(w, /*emit_json=*/false);
    if (rerun.fingerprint != main_run.fingerprint) invariant = false;
  }
  std::printf("  assignment fingerprint %016llx at threads {1,2,8}: %s\n",
              static_cast<unsigned long long>(main_run.fingerprint),
              invariant ? "identical" : "MISMATCH");

  std::string report = StrPrintf(
      "{\"bench\": \"repartition_incremental\", \"dataset\": \"M1\", "
      "\"snapshots\": 8, \"k_top\": 4, \"k_inner\": 3, "
      "\"trigger_ratio\": 0.40, \"boundary_delta_ratio\": 0.40, "
      "\"warm_start\": true, \"threads\": %d, "
      "\"fingerprint\": \"%016llx\", \"thread_invariant\": %s}\n",
      threads, static_cast<unsigned long long>(main_run.fingerprint),
      invariant ? "true" : "false");
  report += main_run.json;
  if (!out_path.empty()) {
    RP_CHECK_OK(AtomicWriteFile(out_path, report));
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return invariant ? 0 : 1;
}
