// Section 6.4's real-time proposal, quantified: "after having its relatively
// small partitions, they can be repeatedly subjected to partitioning
// distributively with the changing congestion measures". This bench compares
// a full re-partition of M1/M2 against the distributed per-region refresh at
// matched granularity.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void Compare(DatasetPreset preset, int k_top, int k_inner) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);

  // Initial whole-network partitioning (done once, offline).
  PartitionerOptions top;
  top.scheme = Scheme::kASG;
  top.k = k_top;
  top.seed = 7;
  Timer timer;
  auto initial = Partitioner(top).PartitionRoadGraph(rg).value();
  double initial_seconds = timer.Seconds();

  // Congestion changes: a later phase of the same field.
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 5;
  field_opt.hotspot_radius_fraction = 0.15;
  field_opt.voronoi_tiling = true;
  field_opt.seed = 17 + 1000;
  CongestionField field(net, field_opt);
  RP_CHECK(rg.SetFeatures(field.DensitiesAt(0.6)).ok());

  // (a) full re-partition at the refined granularity.
  PartitionerOptions full;
  full.scheme = Scheme::kASG;
  full.k = k_top * k_inner;
  full.seed = 9;
  timer.Restart();
  auto global = Partitioner(full).PartitionRoadGraph(rg);
  double global_seconds = timer.Seconds();

  // (b) distributed refresh inside the existing regions.
  DistributedRepartitionOptions dist;
  dist.partitioner.scheme = Scheme::kASG;
  dist.partitioner.k = k_inner;
  dist.partitioner.seed = 9;
  // Regions are small; a shallow kappa sweep suffices per region.
  dist.partitioner.miner.max_kappa = 10;
  dist.partitioner.miner.sample_size = 2000;
  auto local = RepartitionWithinRegions(rg, initial.assignment, dist);

  std::printf("%-4s initial k=%d (%.2fs)\n", spec.name.c_str(),
              initial.k_final, initial_seconds);
  if (global.ok()) {
    auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                   global->assignment).value();
    std::printf("     full re-partition    k=%3d  ans=%.4f  %.3fs\n",
                global->k_final, eval.ans, global_seconds);
  }
  if (local.ok()) {
    auto eval = EvaluatePartitions(rg.adjacency(), rg.features(),
                                   local->assignment).value();
    std::printf("     distributed refresh  k=%3d  ans=%.4f  %.3fs "
                "(%d regions re-cut; parallelizable)\n",
                local->k_final, eval.ans, local->seconds,
                local->regions_repartitioned);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Section 6.4 extension: distributed re-partitioning for "
              "repeated intervals ===\n\n");
  Compare(DatasetPreset::kM1, 4, 3);
  Compare(DatasetPreset::kM2, 5, 3);
  std::printf("The distributed refresh touches each region independently — "
              "the paper's route to real-time operation on networks larger "
              "than M1.\n");
  return 0;
}
