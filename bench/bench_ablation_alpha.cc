// Ablation: the paper's adaptive vector alpha (alpha_i = W(P_i,V)/W(V,V),
// which yields the matrix M = d d^T / s - A) versus a constant alpha
// (Section 5.3 motivates the vector form). A constant alpha turns Equation 5
// into the quadratic form of M_alpha = alpha * D - A, so each constant gets
// its own spectral embedding here.

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

// Spectral method for the constant-alpha cut matrix M_alpha = alpha*D - A.
class ConstAlphaCutMethod : public SpectralCutMethod {
 public:
  explicit ConstAlphaCutMethod(double alpha) : alpha_(alpha) {}

  Result<DenseMatrix> Embed(const CsrGraph& graph, int k) const override {
    SparseMatrix a = graph.ToSparseMatrix();
    SparseOperator a_op(a);
    std::vector<double> d = a.RowSums();
    // y = alpha * D x - A x implemented as a diagonal update of -A.
    class Op : public LinearOperator {
     public:
      Op(const SparseOperator& a_op, const std::vector<double>& d,
         double alpha)
          : a_op_(a_op), d_(d), alpha_(alpha) {}
      int Dim() const override { return a_op_.Dim(); }
      void Apply(const double* x, double* y) const override {
        a_op_.Apply(x, y);
        for (int i = 0; i < Dim(); ++i) y[i] = alpha_ * d_[i] * x[i] - y[i];
      }

     private:
      const SparseOperator& a_op_;
      const std::vector<double>& d_;
      double alpha_;
    } op(a_op, d, alpha_);
    SpectralOptions spectral;
    auto y = ExtremeEigenvectors(op, k, SpectrumEnd::kSmallest, spectral);
    if (!y.ok()) return y.status();
    return RowNormalize(*y);
  }

  double Objective(const CsrGraph& graph,
                   const std::vector<int>& assignment) const override {
    return AlphaCutObjectiveConstAlpha(graph, assignment, alpha_);
  }

  double PartitionTerm(double volume, double internal, int size,
                       double total) const override {
    (void)total;
    if (size <= 0) return 0.0;
    return (alpha_ * volume - internal) / size;
  }

  const char* name() const override { return "const-alpha-cut"; }

 private:
  double alpha_;
};

}  // namespace

int main() {
  RoadNetwork net = MakeCongestedDataset(DatasetPreset::kD1, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  SupergraphMinerOptions miner;
  miner.min_supernodes = 60;  // keep the second level non-trivial
  auto sg = MineSupergraph(rg, miner);
  RP_CHECK(sg.ok());
  const int k = 6;

  std::printf("=== Ablation: adaptive vector alpha vs constant alpha "
              "(D1 supergraph, k=%d) ===\n\n",
              k);
  std::printf("%-18s %10s %10s %10s\n", "variant", "ANS", "intra", "Q");

  SpectralPipelineOptions pipeline;
  pipeline.kmeans.seed = 5;

  auto report = [&](const char* label, const GraphCutResult& cut) {
    auto assignment = sg->ExpandAssignment(cut.assignment).value();
    auto eval =
        EvaluatePartitions(rg.adjacency(), rg.features(), assignment).value();
    double q = Modularity(sg->links(), cut.assignment).value();
    std::printf("%-18s %10.4f %10.4f %10.4f\n", label, eval.ans, eval.intra,
                q);
  };

  {
    AlphaCutMethod adaptive;
    auto cut = SpectralKWayPartition(sg->links(), k, adaptive, pipeline);
    RP_CHECK(cut.ok());
    report("adaptive (paper)", *cut);
  }
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ConstAlphaCutMethod method(alpha);
    auto cut = SpectralKWayPartition(sg->links(), k, method, pipeline);
    if (!cut.ok()) {
      std::printf("alpha=%.2f failed: %s\n", alpha,
                  cut.status().ToString().c_str());
      continue;
    }
    char label[32];
    std::snprintf(label, sizeof label, "constant %.2f", alpha);
    report(label, *cut);
  }

  std::printf("\nNo single constant dominates across datasets, and on "
              "degree-homogeneous supergraphs every constant collapses to "
              "the same embedding (alpha*D - A ~ alpha*d*I - A). The "
              "adaptive vector form needs no tuning and reshapes the "
              "spectrum through the rank-one d d^T/s term — the practical "
              "content of Section 5.3.\n");
  return 0;
}
