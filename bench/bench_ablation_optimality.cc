// Ablation: MCG versus the clustering gain / clustering balance of Jung et
// al. [6] for choosing the number of clusters kappa (Section 4.2 claims MCG
// yields more compact, better-separated clusters).

#include <cstdio>

#include "bench/bench_common.h"

using namespace roadpart;
using namespace roadpart::bench;

namespace {

void SweepMeasures(DatasetPreset preset) {
  DatasetSpec spec = GetDatasetSpec(preset);
  RoadNetwork net = MakeCongestedDataset(preset, 17);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  const std::vector<double>& f = rg.features();

  std::printf("--- %s ---\n", spec.name.c_str());
  std::printf("%6s %14s %14s %14s %12s\n", "kappa", "MCG", "gain", "balance",
              "#supernodes");

  int best_mcg_k = 2;
  int best_gain_k = 2;
  int best_balance_k = 2;
  double best_mcg = -1.0;
  double best_gain = -1.0;
  double best_balance = 1e300;
  for (int kappa = 2; kappa <= 20; ++kappa) {
    auto km = KMeans1D(f, kappa).value();
    double mcg = ModeratedClusteringGain(f, km.assignment, kappa).value();
    double gain = ClusteringGain(f, km.assignment, kappa).value();
    double balance = ClusteringBalance(f, km.assignment, kappa).value();
    int supernodes =
        LabelConstrainedComponents(rg.adjacency(), km.assignment)
            .num_components;
    std::printf("%6d %14.4f %14.4f %14.4f %12d\n", kappa, mcg, gain, balance,
                supernodes);
    if (mcg > best_mcg) {
      best_mcg = mcg;
      best_mcg_k = kappa;
    }
    if (gain > best_gain) {
      best_gain = gain;
      best_gain_k = kappa;
    }
    if (balance < best_balance) {
      best_balance = balance;
      best_balance_k = kappa;
    }
  }
  std::printf("chosen kappa: MCG -> %d, gain -> %d, balance -> %d\n\n",
              best_mcg_k, best_gain_k, best_balance_k);
}

}  // namespace

int main() {
  std::printf("=== Ablation: optimality measure for choosing kappa ===\n\n");
  SweepMeasures(DatasetPreset::kD1);
  SweepMeasures(DatasetPreset::kM1);
  std::printf("MCG moderates the raw gain with the intra/inter error ratio, "
              "damping the drift towards ever-larger kappa that plain gain "
              "exhibits (Section 4.2).\n");
  return 0;
}
