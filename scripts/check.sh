#!/usr/bin/env bash
# Full verification gate: two build trees, all tests in both.
#
#   1. build-check-release : -O2 Release, the complete ctest suite.
#   2. build-check-tsan    : Debug + -fsanitize=thread,undefined; runs the
#      parallel/determinism/lanczos differential suites (the ones that
#      exercise the deterministic parallel runtime) under ThreadSanitizer.
#      Set RP_CHECK_TSAN_ALL=1 to run the *entire* suite under TSan
#      (slow: TSan costs ~5-15x).
#
# Usage: scripts/check.sh [jobs]        (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

RELEASE_DIR=build-check-release
TSAN_DIR=build-check-tsan

echo "==> [1/4] Configure + build Release tree (${RELEASE_DIR})"
cmake -B "${RELEASE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${RELEASE_DIR}" -j "${JOBS}"

echo "==> [2/4] ctest: full suite (Release)"
ctest --test-dir "${RELEASE_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [3/4] Configure + build TSan+UBSan tree (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-omit-frame-pointer -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined" >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}"

echo "==> [4/4] ctest under ThreadSanitizer"
# halt_on_error makes any race fail the test run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}"
export UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:${UBSAN_OPTIONS}}"
if [[ "${RP_CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}"
else
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" \
    -R 'parallel|determinism|lanczos'
fi

echo "==> check.sh: all green"
