#!/usr/bin/env bash
# Full verification gate: three build trees plus a static-analysis stage.
#
#   1. build-check-release : -O2 Release, the complete ctest suite, then a
#      standalone crash-injection rerun (kill the pipeline at every
#      checkpoint stage boundary; --resume must be byte-identical).
#   2. build-check-tsan    : Debug + -fsanitize=thread,undefined; runs the
#      parallel/determinism/lanczos/serve differential suites (the ones
#      that exercise the deterministic parallel runtime) under
#      ThreadSanitizer.
#      Set RP_CHECK_TSAN_ALL=1 to run the *entire* suite under TSan
#      (slow: TSan costs ~5-15x).
#   3. build-check-asan    : Debug + -fsanitize=address,undefined; runs the
#      complete suite under AddressSanitizer (heap/stack overflows,
#      use-after-free, leaks) — TSan and ASan cannot be combined, hence
#      the separate tree. The fault-injection and serving suites then run
#      again, explicitly and verbosely: every injected fault path
#      (corrupted densities, forced non-convergence, degenerate
#      embeddings, torn snapshots) must be memory-clean, not just
#      Status-clean.
#   4. analyze             : tools/rp_analyze over src/, tools/, bench/,
#      tests/ — the token-level analyzer (all legacy rp_lint rules,
#      include-graph layering against tools/analyze/layers.txt, header
#      guards/self-containment, capture-aware ParallelFor audit). The
#      machine-readable report is archived at
#      ${RELEASE_DIR}/analyze_findings.json; any non-baselined finding
#      fails the gate. clang-tidy (driven by .clang-tidy) runs when the
#      binary is available and is skipped with a notice otherwise.
#
# Usage: scripts/check.sh [jobs]        (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

RELEASE_DIR=build-check-release
TSAN_DIR=build-check-tsan
ASAN_DIR=build-check-asan

echo "==> [1/7] Configure + build Release tree (${RELEASE_DIR})"
cmake -B "${RELEASE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${RELEASE_DIR}" -j "${JOBS}"

echo "==> [2/7] ctest: full suite (Release)"
ctest --test-dir "${RELEASE_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [2b/7] crash-injection suite (Release, verbose)"
# Part of the full Release run above, but re-run on its own so a durability
# regression (torn output, stale checkpoint served, resume divergence) is
# attributed unambiguously: this binary kills the CLI at every checkpoint
# stage boundary and demands --resume reproduce the run byte for byte.
"${RELEASE_DIR}/tests/checkpoint_crash_test"

echo "==> [2c/7] serve-runtime chaos suite (Release, verbose)"
# Same attribution rationale for the serving runtime: this suite byte-flips
# every candidate-snapshot byte, injects swap corruption / shed overflow /
# query timeouts, and demands the soak session stay byte-identical across
# thread counts with no torn snapshot and no dropped answer line.
"${RELEASE_DIR}/tests/serve_runtime_test"

echo "==> [3/7] Configure + build TSan+UBSan tree (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-omit-frame-pointer -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined" >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}"

echo "==> [4/7] ctest under ThreadSanitizer"
# halt_on_error makes any race fail the test run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}"
export UBSAN_OPTIONS="halt_on_error=1${UBSAN_OPTIONS:+:${UBSAN_OPTIONS}}"
if [[ "${RP_CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}"
else
  # 'mining' keeps the supergraph-mining differential suite in the TSan net
  # even if its binary is ever renamed away from the determinism pattern;
  # 'serve' covers the serving read path and runtime (threaded batch
  # fan-out with order-fixed output, plus hot snapshot swaps under load,
  # must be race-free at any thread count); 'distributed' and 'tracker'
  # cover the incremental repartitioner (per-region ParallelForTasks
  # fan-out with per-slot outcomes) and the interval label tracker it
  # feeds; 'temporal' covers the interval driver over snapshot series.
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" \
    -R 'parallel|determinism|lanczos|mining|serve|distributed|tracker|temporal'
fi

echo "==> [5/7] Configure + build ASan+UBSan tree (${ASAN_DIR})"
cmake -B "${ASAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -O1" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build "${ASAN_DIR}" -j "${JOBS}"

echo "==> [6/7] ctest under AddressSanitizer"
# Death tests fork and abort by design; keep ASan from treating the abort
# exit path as a leak-check failure inside the forked child.
export ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:${ASAN_OPTIONS}}"
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [6b/7] fault-injection suite under AddressSanitizer (verbose)"
# Part of the full ASan run above, but re-run on its own so a fault-path
# memory bug is attributed unambiguously and its output is always shown.
"${ASAN_DIR}/tests/fault_injection_test"

echo "==> [6c/7] serving read path under AddressSanitizer (verbose)"
# The serving layer hands out reinterpret_cast views into one relocatable
# buffer, so its property and corruption suites are the tests most likely
# to hide an out-of-bounds read; rerun them standalone under ASan.
"${ASAN_DIR}/tests/serve_property_test"
"${ASAN_DIR}/tests/serve_snapshot_test"
"${ASAN_DIR}/tests/serve_runtime_test"

echo "==> [7/7] Static analysis: rp_analyze + clang-tidy"
# JSON report is archived next to the build so CI and humans can diff runs;
# rp_analyze exits 1 on any non-baselined finding, which (set -e) fails the
# gate. On failure, rerun in text mode so the findings land in the log.
if ! "${RELEASE_DIR}/tools/rp_analyze" --root . --format=json \
    src tools bench tests > "${RELEASE_DIR}/analyze_findings.json"; then
  echo "    rp_analyze found non-baselined findings:"
  "${RELEASE_DIR}/tools/rp_analyze" --root . src tools bench tests || true
  echo "    full JSON report: ${RELEASE_DIR}/analyze_findings.json"
  exit 1
fi
echo "    clean; JSON report at ${RELEASE_DIR}/analyze_findings.json"

if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy needs a compilation database; the Release tree exports one.
  cmake -B "${RELEASE_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc' |
    xargs -P "${JOBS}" -n 8 clang-tidy -p "${RELEASE_DIR}" --quiet
else
  echo "    clang-tidy not found on PATH; skipping (rp_lint still ran)."
fi

echo "==> check.sh: all green"
