#!/usr/bin/env python3
"""Plot the figure-bench outputs (results/*.txt) as PNGs.

Usage:
    python3 scripts/plot_results.py [results_dir] [out_dir]

Parses the aligned text tables printed by bench_fig4_small_quality,
bench_fig5_mcg_supernodes and bench_fig7_large_quality and renders
matplotlib figures mirroring the paper's Figures 4, 5 and 7. Requires
matplotlib; degrades to a clear error message without it.
"""

import os
import re
import sys


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def parse_table(text, start_marker, columns):
    """Extracts rows of floats following `start_marker` until a blank line."""
    rows = []
    seen = False
    for line in text.splitlines():
        if start_marker in line:
            seen = True
            continue
        if not seen:
            continue
        stripped = line.strip()
        if not stripped:
            if rows:
                break
            continue
        fields = stripped.split()
        if not fields[0].lstrip("-").isdigit():
            continue
        try:
            rows.append([float(x) for x in fields[:columns]])
        except ValueError:
            continue
    return rows


def plot_fig4(results_dir, out_dir, plt):
    text = read(os.path.join(results_dir, "bench_fig4_small_quality.txt"))
    panels = [
        ("Fig 4(a)", "inter", "higher = better"),
        ("Fig 4(b)", "intra", "lower = better"),
        ("Fig 4(c)", "GDBI", "lower = better"),
        ("Fig 4(d)", "ANS", "lower = better"),
    ]
    fig, axes = plt.subplots(2, 2, figsize=(11, 8))
    for ax, (marker, metric, note) in zip(axes.flat, panels):
        rows = parse_table(text, marker, 4)
        if not rows:
            continue
        ks = [r[0] for r in rows]
        for idx, label in ((1, "AG"), (2, "ASG"), (3, "NG")):
            ax.plot(ks, [r[idx] for r in rows], marker="o", label=label)
        ax.set_xlabel("k")
        ax.set_ylabel(metric)
        ax.set_title(f"{marker} {metric} ({note})")
        ax.legend()
    fig.suptitle("Figure 4 — partitioning quality on D1")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig4.png"), dpi=130)
    print("wrote", os.path.join(out_dir, "fig4.png"))


def plot_fig5(results_dir, out_dir, plt):
    text = read(os.path.join(results_dir, "bench_fig5_mcg_supernodes.txt"))
    blocks = re.split(r"--- Fig 5 \((\w+)", text)[1:]
    fig, axes = plt.subplots(1, 2, figsize=(11, 4))
    for ax, (name, body) in zip(axes.flat, zip(blocks[0::2], blocks[1::2])):
        rows = parse_table(body, "kappa", 3)
        if not rows:
            continue
        kappas = [r[0] for r in rows]
        ax.plot(kappas, [r[1] for r in rows], marker="o", label="MCG")
        ax2 = ax.twinx()
        ax2.plot(kappas, [r[2] for r in rows], marker="s", color="tab:red",
                 label="#supernodes")
        ax.set_xlabel("kappa")
        ax.set_ylabel("MCG")
        ax2.set_ylabel("#supernodes")
        ax.set_title(f"Fig 5 — {name}")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig5.png"), dpi=130)
    print("wrote", os.path.join(out_dir, "fig5.png"))


def plot_fig7(results_dir, out_dir, plt):
    text = read(os.path.join(results_dir, "bench_fig7_large_quality.txt"))
    blocks = re.split(r"--- Fig 7 \((\w+)\)", text)[1:]
    names = blocks[0::2]
    bodies = blocks[1::2]
    fig, axes = plt.subplots(1, len(names), figsize=(5 * len(names), 4))
    if len(names) == 1:
        axes = [axes]
    for ax, name, body in zip(axes, names, bodies):
        rows = parse_table(body, "inter", 6)
        if not rows:
            continue
        ks = [r[0] for r in rows]
        ax.plot(ks, [r[4] for r in rows], marker="o", label="ANS (recursive)")
        ax.plot(ks, [r[5] for r in rows], marker="s",
                label="ANS (greedy pruning)")
        ax.set_xlabel("k")
        ax.set_ylabel("ANS")
        ax.set_title(f"Fig 7 — {name}")
        ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig7.png"), dpi=130)
    print("wrote", os.path.join(out_dir, "fig7.png"))


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else results_dir
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")
    os.makedirs(out_dir, exist_ok=True)
    plot_fig4(results_dir, out_dir, plt)
    plot_fig5(results_dir, out_dir, plt)
    plot_fig7(results_dir, out_dir, plt)


if __name__ == "__main__":
    main()
