file(REMOVE_RECURSE
  "CMakeFiles/netgen_test.dir/netgen_test.cc.o"
  "CMakeFiles/netgen_test.dir/netgen_test.cc.o.d"
  "netgen_test"
  "netgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
