# Empty compiler generated dependencies file for netgen_test.
# This may be replaced when dependencies are built.
