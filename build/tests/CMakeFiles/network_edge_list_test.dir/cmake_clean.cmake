file(REMOVE_RECURSE
  "CMakeFiles/network_edge_list_test.dir/network_edge_list_test.cc.o"
  "CMakeFiles/network_edge_list_test.dir/network_edge_list_test.cc.o.d"
  "network_edge_list_test"
  "network_edge_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_edge_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
