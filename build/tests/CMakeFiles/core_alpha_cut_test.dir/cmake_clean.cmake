file(REMOVE_RECURSE
  "CMakeFiles/core_alpha_cut_test.dir/core_alpha_cut_test.cc.o"
  "CMakeFiles/core_alpha_cut_test.dir/core_alpha_cut_test.cc.o.d"
  "core_alpha_cut_test"
  "core_alpha_cut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_alpha_cut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
