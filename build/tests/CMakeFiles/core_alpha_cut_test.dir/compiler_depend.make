# Empty compiler generated dependencies file for core_alpha_cut_test.
# This may be replaced when dependencies are built.
