file(REMOVE_RECURSE
  "CMakeFiles/core_optimality_gap_test.dir/core_optimality_gap_test.cc.o"
  "CMakeFiles/core_optimality_gap_test.dir/core_optimality_gap_test.cc.o.d"
  "core_optimality_gap_test"
  "core_optimality_gap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optimality_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
