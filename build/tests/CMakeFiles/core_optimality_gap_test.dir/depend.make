# Empty dependencies file for core_optimality_gap_test.
# This may be replaced when dependencies are built.
