# Empty dependencies file for core_optimal_k_test.
# This may be replaced when dependencies are built.
