file(REMOVE_RECURSE
  "CMakeFiles/core_optimal_k_test.dir/core_optimal_k_test.cc.o"
  "CMakeFiles/core_optimal_k_test.dir/core_optimal_k_test.cc.o.d"
  "core_optimal_k_test"
  "core_optimal_k_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optimal_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
