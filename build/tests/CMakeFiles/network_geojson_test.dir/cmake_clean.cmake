file(REMOVE_RECURSE
  "CMakeFiles/network_geojson_test.dir/network_geojson_test.cc.o"
  "CMakeFiles/network_geojson_test.dir/network_geojson_test.cc.o.d"
  "network_geojson_test"
  "network_geojson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_geojson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
