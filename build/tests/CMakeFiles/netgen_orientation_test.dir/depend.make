# Empty dependencies file for netgen_orientation_test.
# This may be replaced when dependencies are built.
