file(REMOVE_RECURSE
  "CMakeFiles/netgen_orientation_test.dir/netgen_orientation_test.cc.o"
  "CMakeFiles/netgen_orientation_test.dir/netgen_orientation_test.cc.o.d"
  "netgen_orientation_test"
  "netgen_orientation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netgen_orientation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
