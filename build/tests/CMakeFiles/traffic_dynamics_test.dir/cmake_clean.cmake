file(REMOVE_RECURSE
  "CMakeFiles/traffic_dynamics_test.dir/traffic_dynamics_test.cc.o"
  "CMakeFiles/traffic_dynamics_test.dir/traffic_dynamics_test.cc.o.d"
  "traffic_dynamics_test"
  "traffic_dynamics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
