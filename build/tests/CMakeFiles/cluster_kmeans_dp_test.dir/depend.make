# Empty dependencies file for cluster_kmeans_dp_test.
# This may be replaced when dependencies are built.
