file(REMOVE_RECURSE
  "CMakeFiles/common_parallel_test.dir/common_parallel_test.cc.o"
  "CMakeFiles/common_parallel_test.dir/common_parallel_test.cc.o.d"
  "common_parallel_test"
  "common_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
