# Empty compiler generated dependencies file for common_parallel_test.
# This may be replaced when dependencies are built.
