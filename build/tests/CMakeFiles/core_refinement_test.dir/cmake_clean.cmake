file(REMOVE_RECURSE
  "CMakeFiles/core_refinement_test.dir/core_refinement_test.cc.o"
  "CMakeFiles/core_refinement_test.dir/core_refinement_test.cc.o.d"
  "core_refinement_test"
  "core_refinement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
