file(REMOVE_RECURSE
  "CMakeFiles/cluster_optimality_test.dir/cluster_optimality_test.cc.o"
  "CMakeFiles/cluster_optimality_test.dir/cluster_optimality_test.cc.o.d"
  "cluster_optimality_test"
  "cluster_optimality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
