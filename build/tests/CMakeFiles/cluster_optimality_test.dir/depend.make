# Empty dependencies file for cluster_optimality_test.
# This may be replaced when dependencies are built.
