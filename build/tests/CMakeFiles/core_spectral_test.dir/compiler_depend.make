# Empty compiler generated dependencies file for core_spectral_test.
# This may be replaced when dependencies are built.
