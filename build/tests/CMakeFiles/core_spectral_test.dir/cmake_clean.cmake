file(REMOVE_RECURSE
  "CMakeFiles/core_spectral_test.dir/core_spectral_test.cc.o"
  "CMakeFiles/core_spectral_test.dir/core_spectral_test.cc.o.d"
  "core_spectral_test"
  "core_spectral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
