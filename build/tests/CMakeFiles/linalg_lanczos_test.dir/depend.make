# Empty dependencies file for linalg_lanczos_test.
# This may be replaced when dependencies are built.
