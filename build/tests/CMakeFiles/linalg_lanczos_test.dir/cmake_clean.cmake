file(REMOVE_RECURSE
  "CMakeFiles/linalg_lanczos_test.dir/linalg_lanczos_test.cc.o"
  "CMakeFiles/linalg_lanczos_test.dir/linalg_lanczos_test.cc.o.d"
  "linalg_lanczos_test"
  "linalg_lanczos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_lanczos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
