file(REMOVE_RECURSE
  "CMakeFiles/temporal_io_test.dir/temporal_io_test.cc.o"
  "CMakeFiles/temporal_io_test.dir/temporal_io_test.cc.o.d"
  "temporal_io_test"
  "temporal_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
