# Empty compiler generated dependencies file for temporal_io_test.
# This may be replaced when dependencies are built.
