# Empty dependencies file for core_supergraph_test.
# This may be replaced when dependencies are built.
