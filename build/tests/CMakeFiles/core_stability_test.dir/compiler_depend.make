# Empty compiler generated dependencies file for core_stability_test.
# This may be replaced when dependencies are built.
