
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_stability_test.cc" "tests/CMakeFiles/core_stability_test.dir/core_stability_test.cc.o" "gcc" "tests/CMakeFiles/core_stability_test.dir/core_stability_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_netgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
