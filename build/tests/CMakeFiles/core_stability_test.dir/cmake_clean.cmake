file(REMOVE_RECURSE
  "CMakeFiles/core_stability_test.dir/core_stability_test.cc.o"
  "CMakeFiles/core_stability_test.dir/core_stability_test.cc.o.d"
  "core_stability_test"
  "core_stability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
