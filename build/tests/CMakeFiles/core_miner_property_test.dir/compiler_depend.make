# Empty compiler generated dependencies file for core_miner_property_test.
# This may be replaced when dependencies are built.
