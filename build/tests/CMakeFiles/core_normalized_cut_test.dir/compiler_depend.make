# Empty compiler generated dependencies file for core_normalized_cut_test.
# This may be replaced when dependencies are built.
