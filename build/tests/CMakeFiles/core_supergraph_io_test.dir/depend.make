# Empty dependencies file for core_supergraph_io_test.
# This may be replaced when dependencies are built.
