file(REMOVE_RECURSE
  "CMakeFiles/core_supergraph_io_test.dir/core_supergraph_io_test.cc.o"
  "CMakeFiles/core_supergraph_io_test.dir/core_supergraph_io_test.cc.o.d"
  "core_supergraph_io_test"
  "core_supergraph_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_supergraph_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
