# Empty dependencies file for bench_fig6_stability.
# This may be replaced when dependencies are built.
