file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mcg_supernodes.dir/bench_fig5_mcg_supernodes.cc.o"
  "CMakeFiles/bench_fig5_mcg_supernodes.dir/bench_fig5_mcg_supernodes.cc.o.d"
  "bench_fig5_mcg_supernodes"
  "bench_fig5_mcg_supernodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mcg_supernodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
