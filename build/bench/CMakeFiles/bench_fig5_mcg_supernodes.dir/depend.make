# Empty dependencies file for bench_fig5_mcg_supernodes.
# This may be replaced when dependencies are built.
