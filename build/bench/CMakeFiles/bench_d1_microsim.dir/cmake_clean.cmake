file(REMOVE_RECURSE
  "CMakeFiles/bench_d1_microsim.dir/bench_d1_microsim.cc.o"
  "CMakeFiles/bench_d1_microsim.dir/bench_d1_microsim.cc.o.d"
  "bench_d1_microsim"
  "bench_d1_microsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d1_microsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
