# Empty dependencies file for bench_d1_microsim.
# This may be replaced when dependencies are built.
