# Empty dependencies file for bench_fig7_large_quality.
# This may be replaced when dependencies are built.
