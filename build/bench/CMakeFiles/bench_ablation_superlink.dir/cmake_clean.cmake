file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_superlink.dir/bench_ablation_superlink.cc.o"
  "CMakeFiles/bench_ablation_superlink.dir/bench_ablation_superlink.cc.o.d"
  "bench_ablation_superlink"
  "bench_ablation_superlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_superlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
