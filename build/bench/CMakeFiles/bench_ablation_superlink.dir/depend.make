# Empty dependencies file for bench_ablation_superlink.
# This may be replaced when dependencies are built.
