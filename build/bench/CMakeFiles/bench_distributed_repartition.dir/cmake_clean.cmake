file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_repartition.dir/bench_distributed_repartition.cc.o"
  "CMakeFiles/bench_distributed_repartition.dir/bench_distributed_repartition.cc.o.d"
  "bench_distributed_repartition"
  "bench_distributed_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
