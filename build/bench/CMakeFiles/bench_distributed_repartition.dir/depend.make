# Empty dependencies file for bench_distributed_repartition.
# This may be replaced when dependencies are built.
