# Empty compiler generated dependencies file for bench_micro_eigen.
# This may be replaced when dependencies are built.
