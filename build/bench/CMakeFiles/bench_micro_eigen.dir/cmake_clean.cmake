file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_eigen.dir/bench_micro_eigen.cc.o"
  "CMakeFiles/bench_micro_eigen.dir/bench_micro_eigen.cc.o.d"
  "bench_micro_eigen"
  "bench_micro_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
