# Empty compiler generated dependencies file for bench_ablation_kprime.
# This may be replaced when dependencies are built.
