file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kprime.dir/bench_ablation_kprime.cc.o"
  "CMakeFiles/bench_ablation_kprime.dir/bench_ablation_kprime.cc.o.d"
  "bench_ablation_kprime"
  "bench_ablation_kprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
