# Empty dependencies file for roadpart_cli.
# This may be replaced when dependencies are built.
