file(REMOVE_RECURSE
  "CMakeFiles/roadpart_cli.dir/roadpart_cli.cc.o"
  "CMakeFiles/roadpart_cli.dir/roadpart_cli.cc.o.d"
  "roadpart_cli"
  "roadpart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
