file(REMOVE_RECURSE
  "CMakeFiles/rp_temporal.dir/temporal/evolution_analyzer.cc.o"
  "CMakeFiles/rp_temporal.dir/temporal/evolution_analyzer.cc.o.d"
  "CMakeFiles/rp_temporal.dir/temporal/series_io.cc.o"
  "CMakeFiles/rp_temporal.dir/temporal/series_io.cc.o.d"
  "CMakeFiles/rp_temporal.dir/temporal/snapshot_series.cc.o"
  "CMakeFiles/rp_temporal.dir/temporal/snapshot_series.cc.o.d"
  "librp_temporal.a"
  "librp_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
