# Empty dependencies file for rp_temporal.
# This may be replaced when dependencies are built.
