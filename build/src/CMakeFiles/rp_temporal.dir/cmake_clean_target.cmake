file(REMOVE_RECURSE
  "librp_temporal.a"
)
