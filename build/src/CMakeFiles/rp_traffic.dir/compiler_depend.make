# Empty compiler generated dependencies file for rp_traffic.
# This may be replaced when dependencies are built.
