
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/congestion_field.cc" "src/CMakeFiles/rp_traffic.dir/traffic/congestion_field.cc.o" "gcc" "src/CMakeFiles/rp_traffic.dir/traffic/congestion_field.cc.o.d"
  "/root/repo/src/traffic/density_mapper.cc" "src/CMakeFiles/rp_traffic.dir/traffic/density_mapper.cc.o" "gcc" "src/CMakeFiles/rp_traffic.dir/traffic/density_mapper.cc.o.d"
  "/root/repo/src/traffic/microsim.cc" "src/CMakeFiles/rp_traffic.dir/traffic/microsim.cc.o" "gcc" "src/CMakeFiles/rp_traffic.dir/traffic/microsim.cc.o.d"
  "/root/repo/src/traffic/router.cc" "src/CMakeFiles/rp_traffic.dir/traffic/router.cc.o" "gcc" "src/CMakeFiles/rp_traffic.dir/traffic/router.cc.o.d"
  "/root/repo/src/traffic/trip_generator.cc" "src/CMakeFiles/rp_traffic.dir/traffic/trip_generator.cc.o" "gcc" "src/CMakeFiles/rp_traffic.dir/traffic/trip_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
