file(REMOVE_RECURSE
  "librp_traffic.a"
)
