file(REMOVE_RECURSE
  "CMakeFiles/rp_traffic.dir/traffic/congestion_field.cc.o"
  "CMakeFiles/rp_traffic.dir/traffic/congestion_field.cc.o.d"
  "CMakeFiles/rp_traffic.dir/traffic/density_mapper.cc.o"
  "CMakeFiles/rp_traffic.dir/traffic/density_mapper.cc.o.d"
  "CMakeFiles/rp_traffic.dir/traffic/microsim.cc.o"
  "CMakeFiles/rp_traffic.dir/traffic/microsim.cc.o.d"
  "CMakeFiles/rp_traffic.dir/traffic/router.cc.o"
  "CMakeFiles/rp_traffic.dir/traffic/router.cc.o.d"
  "CMakeFiles/rp_traffic.dir/traffic/trip_generator.cc.o"
  "CMakeFiles/rp_traffic.dir/traffic/trip_generator.cc.o.d"
  "librp_traffic.a"
  "librp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
