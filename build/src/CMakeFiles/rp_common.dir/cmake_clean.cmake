file(REMOVE_RECURSE
  "CMakeFiles/rp_common.dir/common/flags.cc.o"
  "CMakeFiles/rp_common.dir/common/flags.cc.o.d"
  "CMakeFiles/rp_common.dir/common/logging.cc.o"
  "CMakeFiles/rp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rp_common.dir/common/parallel.cc.o"
  "CMakeFiles/rp_common.dir/common/parallel.cc.o.d"
  "CMakeFiles/rp_common.dir/common/rng.cc.o"
  "CMakeFiles/rp_common.dir/common/rng.cc.o.d"
  "CMakeFiles/rp_common.dir/common/status.cc.o"
  "CMakeFiles/rp_common.dir/common/status.cc.o.d"
  "CMakeFiles/rp_common.dir/common/string_util.cc.o"
  "CMakeFiles/rp_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/rp_common.dir/common/timer.cc.o"
  "CMakeFiles/rp_common.dir/common/timer.cc.o.d"
  "librp_common.a"
  "librp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
