file(REMOVE_RECURSE
  "CMakeFiles/rp_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/rp_cluster.dir/cluster/kmeans.cc.o.d"
  "CMakeFiles/rp_cluster.dir/cluster/kmeans1d.cc.o"
  "CMakeFiles/rp_cluster.dir/cluster/kmeans1d.cc.o.d"
  "CMakeFiles/rp_cluster.dir/cluster/kmeans1d_dp.cc.o"
  "CMakeFiles/rp_cluster.dir/cluster/kmeans1d_dp.cc.o.d"
  "CMakeFiles/rp_cluster.dir/cluster/optimality.cc.o"
  "CMakeFiles/rp_cluster.dir/cluster/optimality.cc.o.d"
  "librp_cluster.a"
  "librp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
