
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/kmeans1d.cc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans1d.cc.o" "gcc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans1d.cc.o.d"
  "/root/repo/src/cluster/kmeans1d_dp.cc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans1d_dp.cc.o" "gcc" "src/CMakeFiles/rp_cluster.dir/cluster/kmeans1d_dp.cc.o.d"
  "/root/repo/src/cluster/optimality.cc" "src/CMakeFiles/rp_cluster.dir/cluster/optimality.cc.o" "gcc" "src/CMakeFiles/rp_cluster.dir/cluster/optimality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
