
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/modularity.cc" "src/CMakeFiles/rp_metrics.dir/metrics/modularity.cc.o" "gcc" "src/CMakeFiles/rp_metrics.dir/metrics/modularity.cc.o.d"
  "/root/repo/src/metrics/pairwise.cc" "src/CMakeFiles/rp_metrics.dir/metrics/pairwise.cc.o" "gcc" "src/CMakeFiles/rp_metrics.dir/metrics/pairwise.cc.o.d"
  "/root/repo/src/metrics/partition_metrics.cc" "src/CMakeFiles/rp_metrics.dir/metrics/partition_metrics.cc.o" "gcc" "src/CMakeFiles/rp_metrics.dir/metrics/partition_metrics.cc.o.d"
  "/root/repo/src/metrics/partition_report.cc" "src/CMakeFiles/rp_metrics.dir/metrics/partition_report.cc.o" "gcc" "src/CMakeFiles/rp_metrics.dir/metrics/partition_report.cc.o.d"
  "/root/repo/src/metrics/validity.cc" "src/CMakeFiles/rp_metrics.dir/metrics/validity.cc.o" "gcc" "src/CMakeFiles/rp_metrics.dir/metrics/validity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
