# Empty dependencies file for rp_metrics.
# This may be replaced when dependencies are built.
