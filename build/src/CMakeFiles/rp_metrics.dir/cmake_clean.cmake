file(REMOVE_RECURSE
  "CMakeFiles/rp_metrics.dir/metrics/modularity.cc.o"
  "CMakeFiles/rp_metrics.dir/metrics/modularity.cc.o.d"
  "CMakeFiles/rp_metrics.dir/metrics/pairwise.cc.o"
  "CMakeFiles/rp_metrics.dir/metrics/pairwise.cc.o.d"
  "CMakeFiles/rp_metrics.dir/metrics/partition_metrics.cc.o"
  "CMakeFiles/rp_metrics.dir/metrics/partition_metrics.cc.o.d"
  "CMakeFiles/rp_metrics.dir/metrics/partition_report.cc.o"
  "CMakeFiles/rp_metrics.dir/metrics/partition_report.cc.o.d"
  "CMakeFiles/rp_metrics.dir/metrics/validity.cc.o"
  "CMakeFiles/rp_metrics.dir/metrics/validity.cc.o.d"
  "librp_metrics.a"
  "librp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
