file(REMOVE_RECURSE
  "librp_linalg.a"
)
