file(REMOVE_RECURSE
  "CMakeFiles/rp_linalg.dir/linalg/dense_matrix.cc.o"
  "CMakeFiles/rp_linalg.dir/linalg/dense_matrix.cc.o.d"
  "CMakeFiles/rp_linalg.dir/linalg/lanczos.cc.o"
  "CMakeFiles/rp_linalg.dir/linalg/lanczos.cc.o.d"
  "CMakeFiles/rp_linalg.dir/linalg/linear_operator.cc.o"
  "CMakeFiles/rp_linalg.dir/linalg/linear_operator.cc.o.d"
  "CMakeFiles/rp_linalg.dir/linalg/sparse_matrix.cc.o"
  "CMakeFiles/rp_linalg.dir/linalg/sparse_matrix.cc.o.d"
  "CMakeFiles/rp_linalg.dir/linalg/symmetric_eigen.cc.o"
  "CMakeFiles/rp_linalg.dir/linalg/symmetric_eigen.cc.o.d"
  "librp_linalg.a"
  "librp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
