
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cc" "src/CMakeFiles/rp_linalg.dir/linalg/dense_matrix.cc.o" "gcc" "src/CMakeFiles/rp_linalg.dir/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/lanczos.cc" "src/CMakeFiles/rp_linalg.dir/linalg/lanczos.cc.o" "gcc" "src/CMakeFiles/rp_linalg.dir/linalg/lanczos.cc.o.d"
  "/root/repo/src/linalg/linear_operator.cc" "src/CMakeFiles/rp_linalg.dir/linalg/linear_operator.cc.o" "gcc" "src/CMakeFiles/rp_linalg.dir/linalg/linear_operator.cc.o.d"
  "/root/repo/src/linalg/sparse_matrix.cc" "src/CMakeFiles/rp_linalg.dir/linalg/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/rp_linalg.dir/linalg/sparse_matrix.cc.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cc" "src/CMakeFiles/rp_linalg.dir/linalg/symmetric_eigen.cc.o" "gcc" "src/CMakeFiles/rp_linalg.dir/linalg/symmetric_eigen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
