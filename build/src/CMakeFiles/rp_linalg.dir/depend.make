# Empty dependencies file for rp_linalg.
# This may be replaced when dependencies are built.
