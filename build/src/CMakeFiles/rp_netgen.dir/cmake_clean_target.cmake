file(REMOVE_RECURSE
  "librp_netgen.a"
)
