file(REMOVE_RECURSE
  "CMakeFiles/rp_netgen.dir/netgen/city_generator.cc.o"
  "CMakeFiles/rp_netgen.dir/netgen/city_generator.cc.o.d"
  "CMakeFiles/rp_netgen.dir/netgen/grid_generator.cc.o"
  "CMakeFiles/rp_netgen.dir/netgen/grid_generator.cc.o.d"
  "CMakeFiles/rp_netgen.dir/netgen/orientation.cc.o"
  "CMakeFiles/rp_netgen.dir/netgen/orientation.cc.o.d"
  "CMakeFiles/rp_netgen.dir/netgen/radial_generator.cc.o"
  "CMakeFiles/rp_netgen.dir/netgen/radial_generator.cc.o.d"
  "librp_netgen.a"
  "librp_netgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_netgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
