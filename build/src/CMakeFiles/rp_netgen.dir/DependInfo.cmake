
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netgen/city_generator.cc" "src/CMakeFiles/rp_netgen.dir/netgen/city_generator.cc.o" "gcc" "src/CMakeFiles/rp_netgen.dir/netgen/city_generator.cc.o.d"
  "/root/repo/src/netgen/grid_generator.cc" "src/CMakeFiles/rp_netgen.dir/netgen/grid_generator.cc.o" "gcc" "src/CMakeFiles/rp_netgen.dir/netgen/grid_generator.cc.o.d"
  "/root/repo/src/netgen/orientation.cc" "src/CMakeFiles/rp_netgen.dir/netgen/orientation.cc.o" "gcc" "src/CMakeFiles/rp_netgen.dir/netgen/orientation.cc.o.d"
  "/root/repo/src/netgen/radial_generator.cc" "src/CMakeFiles/rp_netgen.dir/netgen/radial_generator.cc.o" "gcc" "src/CMakeFiles/rp_netgen.dir/netgen/radial_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
