# Empty dependencies file for rp_netgen.
# This may be replaced when dependencies are built.
