file(REMOVE_RECURSE
  "CMakeFiles/rp_core.dir/core/alpha_cut.cc.o"
  "CMakeFiles/rp_core.dir/core/alpha_cut.cc.o.d"
  "CMakeFiles/rp_core.dir/core/distributed_repartition.cc.o"
  "CMakeFiles/rp_core.dir/core/distributed_repartition.cc.o.d"
  "CMakeFiles/rp_core.dir/core/ji_geroliminis.cc.o"
  "CMakeFiles/rp_core.dir/core/ji_geroliminis.cc.o.d"
  "CMakeFiles/rp_core.dir/core/normalized_cut.cc.o"
  "CMakeFiles/rp_core.dir/core/normalized_cut.cc.o.d"
  "CMakeFiles/rp_core.dir/core/optimal_k.cc.o"
  "CMakeFiles/rp_core.dir/core/optimal_k.cc.o.d"
  "CMakeFiles/rp_core.dir/core/partition_tracker.cc.o"
  "CMakeFiles/rp_core.dir/core/partition_tracker.cc.o.d"
  "CMakeFiles/rp_core.dir/core/partitioner.cc.o"
  "CMakeFiles/rp_core.dir/core/partitioner.cc.o.d"
  "CMakeFiles/rp_core.dir/core/refinement.cc.o"
  "CMakeFiles/rp_core.dir/core/refinement.cc.o.d"
  "CMakeFiles/rp_core.dir/core/spectral_common.cc.o"
  "CMakeFiles/rp_core.dir/core/spectral_common.cc.o.d"
  "CMakeFiles/rp_core.dir/core/stability.cc.o"
  "CMakeFiles/rp_core.dir/core/stability.cc.o.d"
  "CMakeFiles/rp_core.dir/core/supergraph.cc.o"
  "CMakeFiles/rp_core.dir/core/supergraph.cc.o.d"
  "CMakeFiles/rp_core.dir/core/supergraph_io.cc.o"
  "CMakeFiles/rp_core.dir/core/supergraph_io.cc.o.d"
  "CMakeFiles/rp_core.dir/core/supergraph_miner.cc.o"
  "CMakeFiles/rp_core.dir/core/supergraph_miner.cc.o.d"
  "librp_core.a"
  "librp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
