
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha_cut.cc" "src/CMakeFiles/rp_core.dir/core/alpha_cut.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/alpha_cut.cc.o.d"
  "/root/repo/src/core/distributed_repartition.cc" "src/CMakeFiles/rp_core.dir/core/distributed_repartition.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/distributed_repartition.cc.o.d"
  "/root/repo/src/core/ji_geroliminis.cc" "src/CMakeFiles/rp_core.dir/core/ji_geroliminis.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/ji_geroliminis.cc.o.d"
  "/root/repo/src/core/normalized_cut.cc" "src/CMakeFiles/rp_core.dir/core/normalized_cut.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/normalized_cut.cc.o.d"
  "/root/repo/src/core/optimal_k.cc" "src/CMakeFiles/rp_core.dir/core/optimal_k.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/optimal_k.cc.o.d"
  "/root/repo/src/core/partition_tracker.cc" "src/CMakeFiles/rp_core.dir/core/partition_tracker.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/partition_tracker.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/CMakeFiles/rp_core.dir/core/partitioner.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/partitioner.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/CMakeFiles/rp_core.dir/core/refinement.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/refinement.cc.o.d"
  "/root/repo/src/core/spectral_common.cc" "src/CMakeFiles/rp_core.dir/core/spectral_common.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/spectral_common.cc.o.d"
  "/root/repo/src/core/stability.cc" "src/CMakeFiles/rp_core.dir/core/stability.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/stability.cc.o.d"
  "/root/repo/src/core/supergraph.cc" "src/CMakeFiles/rp_core.dir/core/supergraph.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/supergraph.cc.o.d"
  "/root/repo/src/core/supergraph_io.cc" "src/CMakeFiles/rp_core.dir/core/supergraph_io.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/supergraph_io.cc.o.d"
  "/root/repo/src/core/supergraph_miner.cc" "src/CMakeFiles/rp_core.dir/core/supergraph_miner.cc.o" "gcc" "src/CMakeFiles/rp_core.dir/core/supergraph_miner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
