# Empty compiler generated dependencies file for rp_core.
# This may be replaced when dependencies are built.
