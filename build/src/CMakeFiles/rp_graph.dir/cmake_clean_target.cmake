file(REMOVE_RECURSE
  "librp_graph.a"
)
