file(REMOVE_RECURSE
  "CMakeFiles/rp_graph.dir/graph/connected_components.cc.o"
  "CMakeFiles/rp_graph.dir/graph/connected_components.cc.o.d"
  "CMakeFiles/rp_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/rp_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/rp_graph.dir/graph/graph_algos.cc.o"
  "CMakeFiles/rp_graph.dir/graph/graph_algos.cc.o.d"
  "CMakeFiles/rp_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/rp_graph.dir/graph/graph_builder.cc.o.d"
  "librp_graph.a"
  "librp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
