
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connected_components.cc" "src/CMakeFiles/rp_graph.dir/graph/connected_components.cc.o" "gcc" "src/CMakeFiles/rp_graph.dir/graph/connected_components.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/rp_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/rp_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/graph_algos.cc" "src/CMakeFiles/rp_graph.dir/graph/graph_algos.cc.o" "gcc" "src/CMakeFiles/rp_graph.dir/graph/graph_algos.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/rp_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/rp_graph.dir/graph/graph_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
