# Empty compiler generated dependencies file for rp_network.
# This may be replaced when dependencies are built.
