file(REMOVE_RECURSE
  "CMakeFiles/rp_network.dir/network/edge_list_io.cc.o"
  "CMakeFiles/rp_network.dir/network/edge_list_io.cc.o.d"
  "CMakeFiles/rp_network.dir/network/geojson_export.cc.o"
  "CMakeFiles/rp_network.dir/network/geojson_export.cc.o.d"
  "CMakeFiles/rp_network.dir/network/geometry.cc.o"
  "CMakeFiles/rp_network.dir/network/geometry.cc.o.d"
  "CMakeFiles/rp_network.dir/network/network_io.cc.o"
  "CMakeFiles/rp_network.dir/network/network_io.cc.o.d"
  "CMakeFiles/rp_network.dir/network/road_graph.cc.o"
  "CMakeFiles/rp_network.dir/network/road_graph.cc.o.d"
  "CMakeFiles/rp_network.dir/network/road_network.cc.o"
  "CMakeFiles/rp_network.dir/network/road_network.cc.o.d"
  "librp_network.a"
  "librp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
