file(REMOVE_RECURSE
  "librp_network.a"
)
