
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/edge_list_io.cc" "src/CMakeFiles/rp_network.dir/network/edge_list_io.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/edge_list_io.cc.o.d"
  "/root/repo/src/network/geojson_export.cc" "src/CMakeFiles/rp_network.dir/network/geojson_export.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/geojson_export.cc.o.d"
  "/root/repo/src/network/geometry.cc" "src/CMakeFiles/rp_network.dir/network/geometry.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/geometry.cc.o.d"
  "/root/repo/src/network/network_io.cc" "src/CMakeFiles/rp_network.dir/network/network_io.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/network_io.cc.o.d"
  "/root/repo/src/network/road_graph.cc" "src/CMakeFiles/rp_network.dir/network/road_graph.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/road_graph.cc.o.d"
  "/root/repo/src/network/road_network.cc" "src/CMakeFiles/rp_network.dir/network/road_network.cc.o" "gcc" "src/CMakeFiles/rp_network.dir/network/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
