file(REMOVE_RECURSE
  "CMakeFiles/visualize_partitions.dir/visualize_partitions.cpp.o"
  "CMakeFiles/visualize_partitions.dir/visualize_partitions.cpp.o.d"
  "visualize_partitions"
  "visualize_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
