# Empty compiler generated dependencies file for visualize_partitions.
# This may be replaced when dependencies are built.
