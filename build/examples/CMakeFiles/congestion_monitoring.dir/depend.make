# Empty dependencies file for congestion_monitoring.
# This may be replaced when dependencies are built.
