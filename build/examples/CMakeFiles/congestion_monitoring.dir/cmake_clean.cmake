file(REMOVE_RECURSE
  "CMakeFiles/congestion_monitoring.dir/congestion_monitoring.cpp.o"
  "CMakeFiles/congestion_monitoring.dir/congestion_monitoring.cpp.o.d"
  "congestion_monitoring"
  "congestion_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
